package simmpi

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/stats"
)

// TestScaleStressConservation runs a 1k+ rank world under -race with
// mixed traffic — exact-source point-to-point, wildcard (AnySource)
// fan-in, and collective-style hub aggregation — while a controller
// kills ranks mid-flight, and then audits per-(src, dst, tag) sequence
// numbers:
//
//   - conserved traffic (both endpoints outside the kill set) must
//     arrive complete, in order, with no duplicates — exactly seq
//     0..K-1;
//   - victim traffic must be an exact prefix of the sent sequence: FIFO
//     per (source, tag) plus fail-stop drops can lose only a suffix,
//     so any gap, duplicate, or reordering is a runtime bug.
//
// This is the sharded table's adversarial workload: kills race deposits
// and parked waiters across shards, wildcard receivers compete with
// exact ones, and the whole thing must stay sequentially sane.
func TestScaleStressConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-rank stress test skipped in -short mode")
	}
	const (
		groupA  = 768 // conserved ranks: 0..groupA-1, never killed
		groupB  = 256 // victim ranks: groupA..n-1, kill targets
		n       = groupA + groupB
		k       = 24 // messages per (sender, stream)
		hubs    = 8  // group-A collective fan-in aggregators (ranks 0..hubs-1)
		leafFan = 16 // leaves per hub
		kills   = 64
	)
	w, err := NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}

	// recorded[dst] accumulates (src, tag, seq) triples in arrival order;
	// each rank appends only to its own slot, so no locking is needed.
	type receipt struct{ src, tag, seq int }
	recorded := make([][]receipt, n)

	payload := func(seq int) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(seq))
		return b[:]
	}
	seqOf := func(data []byte) int {
		return int(binary.LittleEndian.Uint64(data))
	}

	// Kill controller: fail-stop a random subset of group B while traffic
	// is in flight. Seeded stream keeps the target choice reproducible;
	// the interleaving with traffic is left to the scheduler on purpose.
	stream := stats.NewStream(0x5ca1ab1e)
	killSet := make(map[int]bool)
	for len(killSet) < kills {
		killSet[groupA+stream.Intn(groupB)] = true
	}
	var killWG sync.WaitGroup
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		for r := range killSet {
			time.Sleep(50 * time.Microsecond)
			w.Kill(r)
		}
	}()

	const (
		tagRing  = 1 // A: exact-source ring traffic
		tagWild  = 2 // A: wildcard-received traffic
		tagHub   = 3 // A: hub fan-in (collective-style aggregation)
		tagVict  = 4 // B: victim pairwise traffic
		tagCross = 5 // B→A: cross-group traffic into conserved receivers
	)

	appErr, _ := w.Run(func(c *Comm) error {
		me := c.Rank()
		if me < groupA {
			// --- Group A: conserved. Three outbound streams... ---
			// ring: exact-tagged to the right neighbor (wraps inside A);
			// wild: to (me+7) mod groupA, received via AnySource;
			// hub: leaves 8..8+hubs*leafFan-1 feed rank (leaf-8)/leafFan.
			for seq := 0; seq < k; seq++ {
				if err := c.Send((me+1)%groupA, tagRing, payload(seq)); err != nil {
					return err
				}
				if err := c.Send((me+7)%groupA, tagWild, payload(seq)); err != nil {
					return err
				}
			}
			isLeaf := me >= hubs && me < hubs+hubs*leafFan
			if isLeaf {
				hub := (me - hubs) / leafFan
				for seq := 0; seq < k; seq++ {
					if err := c.Send(hub, tagHub, payload(seq)); err != nil {
						return err
					}
				}
			}
			// --- ...and the matching inbound streams. ---
			// Exact-source ring receives first: FIFO per (src, tag) makes
			// these deterministic.
			for seq := 0; seq < k; seq++ {
				msg, err := c.Recv((me-1+groupA)%groupA, tagRing)
				if err != nil {
					return err
				}
				recorded[me] = append(recorded[me], receipt{msg.Source, msg.Tag, seqOf(msg.Data)})
				msg.Release()
			}
			// Wildcard receives: k messages from (me-7), plus — for the
			// cross-group targets — up to k from a B rank that may die
			// mid-stream, so those use Probe+exact-Recv and tolerate
			// peer death.
			for seq := 0; seq < k; seq++ {
				msg, err := c.Recv(mpi.AnySource, tagWild)
				if err != nil {
					return err
				}
				recorded[me] = append(recorded[me], receipt{msg.Source, msg.Tag, seqOf(msg.Data)})
				msg.Release()
			}
			if me < hubs {
				// Collective-style fan-in: leafFan senders, one sink,
				// wildcard matching — the BenchmarkFanInAnySource shape.
				for i := 0; i < leafFan*k; i++ {
					msg, err := c.Recv(mpi.AnySource, tagHub)
					if err != nil {
						return err
					}
					recorded[me] = append(recorded[me], receipt{msg.Source, msg.Tag, seqOf(msg.Data)})
					msg.Release()
				}
			}
			if me >= groupA-groupB {
				// Cross-group target: exactly one B sender (killable).
				src := groupA + (me - (groupA - groupB))
				for seq := 0; seq < k; seq++ {
					msg, err := c.Recv(src, tagCross)
					if err != nil {
						if isFailureErr(err) {
							break // sender died: suffix lost, audited below
						}
						return err
					}
					recorded[me] = append(recorded[me], receipt{msg.Source, msg.Tag, seqOf(msg.Data)})
					msg.Release()
				}
			}
			return nil
		}
		// --- Group B: victims. Pairwise traffic inside B plus a cross
		// stream into a conserved A rank. Every error here is expected
		// (self killed, peer dead) and audited post-hoc.
		peer := groupA + (me - groupA) ^ 1
		crossDst := (groupA - groupB) + (me - groupA)
		for seq := 0; seq < k; seq++ {
			if err := c.Send(peer, tagVict, payload(seq)); err != nil {
				return err
			}
			if err := c.Send(crossDst, tagCross, payload(seq)); err != nil {
				return err
			}
		}
		for seq := 0; seq < k; seq++ {
			msg, err := c.Recv(peer, tagVict)
			if err != nil {
				return err
			}
			recorded[me] = append(recorded[me], receipt{msg.Source, msg.Tag, seqOf(msg.Data)})
			msg.Release()
		}
		return nil
	})
	killWG.Wait()
	if appErr != nil {
		t.Fatalf("unexpected application error: %v", appErr)
	}

	// Audit: group receipts per (dst, src, tag) and check the sequence
	// law. perStream[dst][{src,tag}] = received seqs in arrival order.
	for dst := range recorded {
		perStream := make(map[[2]int][]int)
		for _, r := range recorded[dst] {
			key := [2]int{r.src, r.tag}
			perStream[key] = append(perStream[key], r.seq)
		}
		for key, seqs := range perStream {
			src, tag := key[0], key[1]
			for i, s := range seqs {
				if s != i {
					t.Fatalf("dst %d src %d tag %d: position %d holds seq %d (lost, duplicated, or reordered)",
						dst, src, tag, i, s)
				}
			}
			conserved := src < groupA && dst < groupA && tag != tagCross
			if conserved && len(seqs) != k {
				t.Fatalf("dst %d src %d tag %d: conserved stream delivered %d/%d messages",
					dst, src, tag, len(seqs), k)
			}
		}
	}
	if w.Deaths() != kills {
		t.Fatalf("Deaths() = %d, want %d", w.Deaths(), kills)
	}
}

// TestBarrier10k is the CI large-N smoke: 10,000 ranks complete a
// dissemination barrier followed by a verified global sum. Run under
// -race in the scale job, it sweeps every shard's deposit/wake path with
// the detector watching; the exact-sum check catches any message that
// went missing or doubled along the reduction tree.
func TestBarrier10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-rank smoke test skipped in -short mode")
	}
	const n = 10_000
	w, err := NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) * float64(n+1) / 2
	appErr, failures := w.Run(func(c *Comm) error {
		if err := mpi.Barrier(c); err != nil {
			return err
		}
		out, err := mpi.AllreduceFloat64s(c, []float64{float64(c.Rank() + 1)}, mpi.OpSum)
		if err != nil {
			return err
		}
		if out[0] != want {
			return fmt.Errorf("rank %d: sum %v, want %v", c.Rank(), out[0], want)
		}
		return nil
	})
	if appErr != nil {
		t.Fatal(appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures: %v", failures)
	}
}
