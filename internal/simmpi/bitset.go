package simmpi

import (
	"math/bits"
	"sync/atomic"
)

// atomicBitset is a fixed-capacity bitset with atomic per-bit updates:
// the compact liveness representation that keeps Kill/Revive/AliveCount
// and the dead-rank sweeps O(1) / O(set bits) instead of O(world size).
// A 100k-rank world's dead-set is ~12 KiB of words; iterating it skips
// zero words 64 ranks at a time, so a sweep after two failures touches
// two words, not 100k flags.
//
// Individual bit operations are linearizable (Load/CAS per word);
// whole-set iteration is not a snapshot — callers that need a frozen
// view must quiesce writers first, which is exactly what the epoch gate
// guarantees before Revive sweeps (the world is interrupted and the
// injector stopped or rearmed).
type atomicBitset struct {
	words []atomic.Uint64
	n     int
}

func newAtomicBitset(n int) *atomicBitset {
	return &atomicBitset{words: make([]atomic.Uint64, (n+63)/64), n: n}
}

// get reports bit i.
func (b *atomicBitset) get(i int) bool {
	return b.words[i>>6].Load()&(1<<(uint(i)&63)) != 0
}

// set sets bit i and reports whether it was already set.
func (b *atomicBitset) set(i int) bool {
	w := &b.words[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := w.Load()
		if old&mask != 0 {
			return true
		}
		if w.CompareAndSwap(old, old|mask) {
			return false
		}
	}
}

// clear clears bit i and reports whether it was set.
func (b *atomicBitset) clear(i int) bool {
	w := &b.words[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := w.Load()
		if old&mask == 0 {
			return false
		}
		if w.CompareAndSwap(old, old&^mask) {
			return true
		}
	}
}

// forEachSet calls fn for every set bit in ascending order, skipping
// zero words wholesale.
func (b *atomicBitset) forEachSet(fn func(i int)) {
	for wi := range b.words {
		w := b.words[wi].Load()
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			if i >= b.n {
				return
			}
			fn(i)
			w &= w - 1
		}
	}
}

// forEachClear calls fn for every clear bit below the capacity, skipping
// all-ones words wholesale.
func (b *atomicBitset) forEachClear(fn func(i int)) {
	for wi := range b.words {
		w := ^b.words[wi].Load()
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			if i >= b.n {
				return
			}
			fn(i)
			w &= w - 1
		}
	}
}

// count returns the number of set bits.
func (b *atomicBitset) count() int {
	total := 0
	for wi := range b.words {
		total += bits.OnesCount64(b.words[wi].Load())
	}
	return total
}
