package simmpi

import (
	"errors"
	"sync"

	"repro/internal/mpi"
)

// This file holds the box-level half of the runtime's matching engine:
// the per-destination-rank state (rankBox) with its pair-indexed message
// queues and selector-keyed wait queues. The shard-level half — lock
// striping, waiter registration, liveness sweeps — lives in table.go.

// envelope is a message in flight. buf is the pooled-buffer handle data
// lives in (nil for unpooled or oversized payloads); the reference it
// carries transfers to the receiver on match, or is released on purge.
// seq is the arrival stamp at the destination box, the total order that
// makes wildcard matching exact across pairs.
type envelope struct {
	source int
	tag    int
	data   []byte
	buf    *mpi.PooledBuf
	seq    uint64
}

// pairKey identifies one (source, tag) message class at a destination —
// the granularity at which MPI guarantees FIFO ordering.
type pairKey struct {
	src, tag int
}

// pairQueue is the FIFO of unmatched messages for one (source, tag)
// pair. It is a sliding-window slice: pop advances head instead of
// re-slicing the front, and the backing array is reused once drained, so
// the steady-state deposit/match cycle allocates nothing. Empty queues
// are kept in the box's pair map (and on the shard free list once
// evicted) because collective tag windows revisit the same pairs every
// iteration.
type pairQueue struct {
	key      pairKey
	head     int
	msgs     []envelope
	nextFree *pairQueue
}

func (q *pairQueue) empty() bool { return q.head == len(q.msgs) }

func (q *pairQueue) len() int { return len(q.msgs) - q.head }

func (q *pairQueue) headSeq() uint64 { return q.msgs[q.head].seq }

func (q *pairQueue) push(e envelope) { q.msgs = append(q.msgs, e) }

func (q *pairQueue) pop() envelope {
	e := q.msgs[q.head]
	q.msgs[q.head] = envelope{} // drop payload references eagerly
	q.head++
	if q.head == len(q.msgs) {
		q.msgs = q.msgs[:0]
		q.head = 0
	}
	return e
}

// waitKey is a blocked operation's (source, tag) selector, wildcards
// included — the granularity of targeted wakeups.
type waitKey struct {
	src, tag int
}

// waitQueue holds the waiters blocked on one selector of one box. n
// counts registered waiters (a waiter stays registered while it re-scans
// between wakeups, so a Signal aimed at its selector is never wasted on
// an empty queue). Queues are recycled through the shard free list —
// the condvar is rebound once to the shard mutex and reused forever, so
// parking allocates nothing in steady state. activeIdx is the queue's
// position in the shard's active list (-1 when idle), which is what
// makes liveness broadcasts O(parked waiters) instead of O(world size).
type waitQueue struct {
	cond      *sync.Cond
	n         int
	activeIdx int
	nextFree  *waitQueue
}

// rankBox holds the unmatched messages addressed to one rank, indexed by
// (source, tag) pair, plus the rank's parked waiters. Receivers match
// under the owning shard's lock: exact selectors are a single map
// lookup + FIFO pop; wildcard selectors take the minimum arrival stamp
// across matching pairs — exactly MPI's rule (FIFO per (source, tag),
// wildcards selecting the earliest arrival among all matching pairs).
type rankBox struct {
	owner   int
	pairs   map[pairKey]*pairQueue
	waiters map[waitKey]*waitQueue
	nq      int    // queued messages across all pairs
	seq     uint64 // next arrival stamp
	dirty   bool   // on the shard's dirty list (has seen deposits since last sweep)
}

func newRankBox(owner int) *rankBox {
	// Size hints pre-allocate the first bucket so the first deposit and
	// first park do not each pay a map-grow allocation on the hot path.
	return &rankBox{
		owner:   owner,
		pairs:   make(map[pairKey]*pairQueue, 8),
		waiters: make(map[waitKey]*waitQueue, 8),
	}
}

// pairsGCThreshold bounds the number of retained-but-empty pair queues
// per box: below it, empties stay mapped for reuse (collectives cycle
// through a small set of pairs); above it, drained queues are evicted to
// the shard free list so worlds with churning tag patterns do not grow
// monotonically.
const pairsGCThreshold = 64

// match finds, removes, and returns the earliest-arrived queued envelope
// matching the selectors. The caller holds the owning shard's lock.
func (b *rankBox) match(s *mboxShard, src, tag int) (envelope, bool) {
	if src != mpi.AnySource && tag != mpi.AnyTag {
		q := b.pairs[pairKey{src, tag}]
		if q == nil || q.empty() {
			return envelope{}, false
		}
		return b.popFrom(s, q), true
	}
	q := b.peekWild(src, tag)
	if q == nil {
		return envelope{}, false
	}
	return b.popFrom(s, q), true
}

// peek returns the earliest matching envelope without consuming it
// (probe semantics). The caller holds the owning shard's lock.
func (b *rankBox) peek(src, tag int) (envelope, bool) {
	if src != mpi.AnySource && tag != mpi.AnyTag {
		q := b.pairs[pairKey{src, tag}]
		if q == nil || q.empty() {
			return envelope{}, false
		}
		return q.msgs[q.head], true
	}
	q := b.peekWild(src, tag)
	if q == nil {
		return envelope{}, false
	}
	return q.msgs[q.head], true
}

// peekWild selects the non-empty pair queue with the earliest head
// arrival among those matching a wildcard selector.
func (b *rankBox) peekWild(src, tag int) *pairQueue {
	if b.nq == 0 {
		return nil
	}
	var best *pairQueue
	for k, q := range b.pairs {
		if q.empty() {
			continue
		}
		if src != mpi.AnySource && k.src != src {
			continue
		}
		if tag != mpi.AnyTag && k.tag != tag {
			continue
		}
		if best == nil || q.headSeq() < best.headSeq() {
			best = q
		}
	}
	return best
}

// popFrom removes the head of q, evicting the drained queue to the shard
// free list when the box's pair map has grown past the GC threshold.
func (b *rankBox) popFrom(s *mboxShard, q *pairQueue) envelope {
	e := q.pop()
	b.nq--
	if q.empty() && len(b.pairs) > pairsGCThreshold {
		delete(b.pairs, q.key)
		s.freePairQueue(q)
	}
	return e
}

// depositLocked enqueues one envelope. The caller holds the shard lock
// and has already performed the liveness checks.
func (b *rankBox) depositLocked(s *mboxShard, src, tag int, data []byte, pb *mpi.PooledBuf) {
	k := pairKey{src, tag}
	q := b.pairs[k]
	if q == nil {
		q = s.allocPairQueue(k)
		b.pairs[k] = q
	}
	q.push(envelope{source: src, tag: tag, data: data, buf: pb, seq: b.seq})
	b.seq++
	b.nq++
}

// purgeLocked discards all unmatched messages: stale traffic from an
// epoch being rolled back, or addressed to a rank incarnation that no
// longer exists. Pooled buffers ride envelopes with a reference each, so
// purge releases them back to the arena instead of leaking them.
func (b *rankBox) purgeLocked(s *mboxShard) {
	for k, q := range b.pairs {
		for !q.empty() {
			e := q.pop()
			if e.buf != nil {
				e.buf.Release()
			}
		}
		delete(b.pairs, k)
		s.freePairQueue(q)
	}
	b.nq = 0
}

func matchesSelector(src, tag, wantSrc, wantTag int) bool {
	return (wantSrc == mpi.AnySource || src == wantSrc) &&
		(wantTag == mpi.AnyTag || tag == wantTag)
}

func isFailureErr(err error) bool {
	return errors.Is(err, mpi.ErrKilled) ||
		errors.Is(err, mpi.ErrPeerDead) ||
		errors.Is(err, mpi.ErrAborted) ||
		errors.Is(err, mpi.ErrInterrupted) ||
		errors.Is(err, mpi.ErrFailurePending)
}
