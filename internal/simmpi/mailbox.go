package simmpi

import (
	"errors"
	"sync"

	"repro/internal/mpi"
)

// envelope is a message in flight. buf is the pooled-buffer handle data
// lives in (nil for unpooled or oversized payloads); the reference it
// carries transfers to the receiver on match, or is released on purge.
type envelope struct {
	source int
	tag    int
	data   []byte
	buf    *mpi.PooledBuf
	seq    uint64 // arrival order, for FIFO matching across (source, tag)
}

// waitKey is a blocked operation's (source, tag) selector, wildcards
// included — the granularity of targeted wakeups.
type waitKey struct {
	src, tag int
}

// waitQueue holds the waiters blocked on one selector. n counts them so
// the map entry can be dropped when the last one leaves (worlds create
// many short-lived tag patterns; the map must not grow monotonically).
type waitQueue struct {
	cond *sync.Cond
	n    int
}

// mailbox holds the unmatched messages addressed to one rank. Receivers
// scan it under the lock for the earliest envelope matching their
// (source, tag) selectors — exactly MPI's matching rule: FIFO per
// (source, tag) pair, with wildcards selecting the earliest arrival among
// all matching pairs.
//
// Blocked receivers and probers park on per-selector wait queues instead
// of one shared sync.Cond: a deposit wakes only the (at most four)
// selector patterns its (source, tag) can match, not every waiter on the
// rank. Under fan-in workloads — many goroutines blocked on distinct
// tags — the old per-deposit Broadcast woke all of them to re-scan the
// queue and go back to sleep, a classic thundering herd.
type mailbox struct {
	world *World
	owner int

	mu      sync.Mutex
	waiters map[waitKey]*waitQueue
	queue   []envelope
	next    uint64
}

func newMailbox(w *World, owner int) *mailbox {
	return &mailbox{world: w, owner: owner, waiters: make(map[waitKey]*waitQueue)}
}

// wait parks the caller on its selector's queue until signalled. Caller
// holds mb.mu; the queue is re-checked by the caller's loop after wakeup,
// so a stale or stolen wakeup is always safe.
func (mb *mailbox) wait(src, tag int) {
	k := waitKey{src: src, tag: tag}
	q := mb.waiters[k]
	if q == nil {
		q = &waitQueue{cond: sync.NewCond(&mb.mu)}
		mb.waiters[k] = q
	}
	q.n++
	q.cond.Wait()
	q.n--
	if q.n == 0 {
		delete(mb.waiters, k)
	}
}

// signalArrival wakes one waiter on each selector pattern that can match
// a newly arrived (source, tag) message: the exact pair, the two
// single-wildcard forms, and the full wildcard. Caller holds mb.mu.
func (mb *mailbox) signalArrival(source, tag int) {
	mb.signalKey(waitKey{src: source, tag: tag})
	mb.signalKey(waitKey{src: source, tag: mpi.AnyTag})
	mb.signalKey(waitKey{src: mpi.AnySource, tag: tag})
	mb.signalKey(waitKey{src: mpi.AnySource, tag: mpi.AnyTag})
}

func (mb *mailbox) signalKey(k waitKey) {
	if q := mb.waiters[k]; q != nil {
		q.cond.Signal()
	}
}

// wakeAllLocked broadcasts every wait queue. Liveness transitions (kill,
// abort, interrupt, resume, purge) must wake everyone: the predicates
// waiters re-check (errIfDown) are not tied to any selector.
func (mb *mailbox) wakeAllLocked() {
	for _, q := range mb.waiters {
		q.cond.Broadcast()
	}
}

// broadcast wakes all waiters so they can re-check liveness predicates.
func (mb *mailbox) broadcast() {
	mb.mu.Lock()
	mb.wakeAllLocked()
	mb.mu.Unlock()
}

// deposit enqueues a message and reports whether it was accepted.
// Deposits to dead ranks, aborted worlds, or interrupted epochs are
// dropped (returning false), like packets to a crashed node (an
// interrupted epoch's traffic is recomputed from the checkpoint anyway);
// the caller still owns pb's reference on that path and must release it.
// On acceptance the reference rides the envelope to the receiver.
func (mb *mailbox) deposit(source, tag int, data []byte, pb *mpi.PooledBuf) bool {
	if mb.world.aborted.Load() || mb.world.interrupted.Load() || mb.world.dead[mb.owner].Load() {
		return false
	}
	mb.mu.Lock()
	mb.queue = append(mb.queue, envelope{source: source, tag: tag, data: data, buf: pb, seq: mb.next})
	mb.next++
	mb.world.met.mailboxHWM.SetMax(int64(len(mb.queue)))
	mb.signalArrival(source, tag)
	mb.mu.Unlock()
	return true
}

func matches(e envelope, src, tag int) bool {
	return (src == mpi.AnySource || e.source == src) &&
		(tag == mpi.AnyTag || e.tag == tag)
}

// errIfDown returns the error that should abort the owner's operation, or
// nil if the owner may keep waiting for a message from src.
func (mb *mailbox) errIfDown(src int) error {
	if mb.world.aborted.Load() {
		return mpi.ErrAborted
	}
	if mb.world.dead[mb.owner].Load() {
		return mpi.ErrKilled
	}
	if mb.world.interrupted.Load() {
		return mpi.ErrInterrupted
	}
	if src != mpi.AnySource && mb.world.dead[src].Load() {
		return mpi.ErrPeerDead
	}
	return nil
}

// receive blocks until a message matching (src, tag) is available and
// removes and returns it. It unblocks with an error when the owner is
// killed, the world aborts, or a specific awaited peer dies first.
// A message already delivered before the peer died is still returned:
// death invalidates only *future* traffic.
func (mb *mailbox) receive(src, tag int) (mpi.Message, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if idx, ok := mb.match(src, tag); ok {
			e := mb.queue[idx]
			mb.queue = append(mb.queue[:idx], mb.queue[idx+1:]...)
			return mpi.NewMessage(e.source, e.tag, e.data, e.buf), nil
		}
		if err := mb.errIfDown(src); err != nil {
			return mpi.Message{}, err
		}
		mb.wait(src, tag)
	}
}

// tryReceive attempts a non-blocking matched receive.
func (mb *mailbox) tryReceive(src, tag int) (mpi.Message, bool, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if idx, ok := mb.match(src, tag); ok {
		e := mb.queue[idx]
		mb.queue = append(mb.queue[:idx], mb.queue[idx+1:]...)
		return mpi.NewMessage(e.source, e.tag, e.data, e.buf), true, nil
	}
	if err := mb.errIfDown(src); err != nil {
		return mpi.Message{}, true, err
	}
	return mpi.Message{}, false, nil
}

// probe blocks until a matching message is available and returns its
// envelope without consuming it.
func (mb *mailbox) probe(src, tag int) (mpi.Status, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if idx, ok := mb.match(src, tag); ok {
			e := mb.queue[idx]
			// The probe may have absorbed the deposit's single wakeup
			// for this selector without consuming the message; pass the
			// wakeup on so a sibling waiter (e.g. the matching receive)
			// is not stranded with a deliverable message in the queue.
			mb.signalKey(waitKey{src: src, tag: tag})
			return mpi.Status{Source: e.source, Tag: e.tag, Len: len(e.data)}, nil
		}
		if err := mb.errIfDown(src); err != nil {
			return mpi.Status{}, err
		}
		mb.wait(src, tag)
	}
}

// match finds the earliest-arrived queued envelope matching the
// selectors. Linear scan: queues stay short because matching consumes
// eagerly; envelopes carry seq so "earliest" is exact even though
// removals reorder nothing (the queue is already arrival-ordered).
func (mb *mailbox) match(src, tag int) (int, bool) {
	for i, e := range mb.queue {
		if matches(e, src, tag) {
			return i, true
		}
	}
	return 0, false
}

// purge discards all unmatched messages: stale traffic from an epoch
// that is being rolled back, or addressed to a rank incarnation that no
// longer exists. Pooled buffers ride envelopes with a reference each, so
// purge releases them back to the arena instead of leaking them.
func (mb *mailbox) purge() {
	mb.mu.Lock()
	for i := range mb.queue {
		if pb := mb.queue[i].buf; pb != nil {
			pb.Release()
		}
	}
	mb.queue = nil
	mb.wakeAllLocked()
	mb.mu.Unlock()
}

// pending returns the number of unmatched messages, for tests and the
// bookmark-exchange verifier.
func (mb *mailbox) pending() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}

func isFailureErr(err error) bool {
	return errors.Is(err, mpi.ErrKilled) ||
		errors.Is(err, mpi.ErrPeerDead) ||
		errors.Is(err, mpi.ErrAborted) ||
		errors.Is(err, mpi.ErrInterrupted)
}
