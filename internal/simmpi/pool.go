package simmpi

import (
	"sync"

	"repro/internal/mpi"
)

// The arena is the World's sync.Pool-backed buffer pool for message
// payloads. Sends borrow a buffer, copy the payload once at the
// transport boundary, and enqueue it; the receiver owns the buffer until
// it calls Message.Release, which returns it here for the next send.
// Buffers are size-classed in powers of two so a recycled buffer is
// never undersized for its class, and each buffer keeps its
// mpi.PooledBuf handle for life — recycling re-uses the handle, so the
// steady-state send/receive/release cycle allocates nothing.
//
// Oversized payloads (beyond the largest class) fall back to plain
// allocations with no handle; they are rare (checkpoint images take the
// storage path, not the message path) and simply bypass reuse.

const (
	// arenaMinClass is the smallest pooled buffer (wire headers, hashes,
	// barrier tokens all fit).
	arenaMinClass = 64
	// arenaMaxClass bounds pooled buffers; beyond it the arena falls
	// back to plain allocation.
	arenaMaxClass = 64 * 1024
	arenaClasses  = 11 // 64 << 10 == 64 KiB
)

type arena struct {
	classes [arenaClasses]sync.Pool
	// poison overwrites returned buffers with a sentinel so a
	// use-after-release reads garbage deterministically; enabled under
	// the race detector where such bugs should be loudest.
	poison bool
}

var _ mpi.Recycler = (*arena)(nil)

func newArena() *arena {
	a := &arena{poison: raceEnabled}
	for c := range a.classes {
		size := arenaMinClass << c
		a.classes[c].New = func() any {
			return mpi.NewPooledBuf(make([]byte, size), a)
		}
	}
	return a
}

// classFor returns the index of the smallest class holding n bytes, or
// -1 when n exceeds the largest class.
func classFor(n int) int {
	size := arenaMinClass
	for c := 0; c < arenaClasses; c++ {
		if n <= size {
			return c
		}
		size <<= 1
	}
	return -1
}

// acquire returns a buffer of length n and its refcounted handle (nil
// for oversized fallback allocations). The handle carries one creator
// reference.
func (a *arena) acquire(n int) ([]byte, *mpi.PooledBuf) {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n), nil
	}
	pb := a.classes[c].Get().(*mpi.PooledBuf)
	pb.Reset()
	return pb.Bytes()[:n], pb
}

// Recycle implements mpi.Recycler: the buffer's last reference was
// released, so it goes back to its size class for the next acquire.
func (a *arena) Recycle(pb *mpi.PooledBuf) {
	b := pb.Bytes()
	c := classFor(cap(b))
	if c < 0 || arenaMinClass<<c != cap(b) {
		return // not one of ours; drop it for the GC
	}
	if a.poison {
		full := b[:cap(b)]
		for i := range full {
			full[i] = poisonByte
		}
	}
	a.classes[c].Put(pb)
}

// poisonByte fills recycled buffers under the race detector: any reader
// holding a released payload sees this pattern instead of stale (or
// worse, newly overwritten) data.
const poisonByte = 0xDB
