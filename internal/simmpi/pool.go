package simmpi

import "repro/internal/mpi"

// The payload buffer arena started here and moved to the shared mpi
// package (mpi.Arena) when the transport grew a second backend: the
// multi-process runtime's socket receive path borrows the same pooled
// buffers for zero-copy frame delivery. These aliases keep the World's
// internals reading as before; the arena's unit tests moved with it.
type arena = mpi.Arena

func newArena() *arena { return mpi.NewArena() }
