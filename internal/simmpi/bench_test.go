package simmpi

import (
	"sync"
	"testing"

	"repro/internal/mpi"
)

// Hot-path benchmarks for the CI bench gate (cmd/benchgate). Each
// iteration performs a fixed batch of work so a single `-benchtime 1x`
// sample is well above timer granularity.

const benchBatch = 2000

// BenchmarkPingPong measures the blocking send/recv round trip — the
// path every redundant message and every peer-checkpoint shard rides.
func BenchmarkPingPong(b *testing.B) {
	w, err := NewWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	payload := make([]byte, 256)
	b.SetBytes(benchBatch * int64(len(payload)) * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchBatch; j++ {
			if err := c0.Send(1, 1, payload); err != nil {
				b.Fatal(err)
			}
			msg, err := c1.Recv(0, 1)
			if err != nil {
				b.Fatal(err)
			}
			msg.Release()
			if err := c1.Send(0, 2, payload); err != nil {
				b.Fatal(err)
			}
			msg, err = c0.Recv(1, 2)
			if err != nil {
				b.Fatal(err)
			}
			msg.Release()
		}
	}
}

// BenchmarkFanInAnySource measures wildcard receives with competing
// senders — the peer-store Serve loop's steady state.
func BenchmarkFanInAnySource(b *testing.B) {
	const senders = 4
	w, err := NewWorld(senders + 1)
	if err != nil {
		b.Fatal(err)
	}
	sink, _ := w.Comm(senders)
	comms := make([]*Comm, senders)
	for r := range comms {
		comms[r], _ = w.Comm(r)
	}
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < benchBatch; j++ {
				msg, err := sink.Recv(mpi.AnySource, mpi.AnyTag)
				if err != nil {
					b.Error(err)
					return
				}
				msg.Release()
			}
		}()
		for j := 0; j < benchBatch; j++ {
			if err := comms[j%senders].Send(senders, 1, payload); err != nil {
				b.Fatal(err)
			}
		}
		<-done
	}
}

// BenchmarkEpochBoundary measures the partial-restart epoch machinery:
// Interrupt, Revive of one rank, Resume — the fixed cost every
// sphere-local recovery pays before any peer fetch.
func BenchmarkEpochBoundary(b *testing.B) {
	w, err := NewWorld(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchBatch; j++ {
			w.Kill(3)
			w.Interrupt()
			w.Revive(3)
			w.Resume()
		}
	}
}

// BenchmarkMailboxManyWaiters is the thundering-herd workload the
// targeted-wakeup rework attacks: many goroutines blocked on distinct
// tags of one mailbox while a sender deposits round-robin. With the old
// per-deposit Broadcast every deposit woke all waiters to rescan the
// queue and park again (O(waiters) wakeups per message); per-selector
// wait queues wake exactly the matching waiter.
func BenchmarkMailboxManyWaiters(b *testing.B) {
	const waiters = 32
	const msgs = benchBatch
	w, err := NewWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	payload := make([]byte, 64)
	b.SetBytes(msgs * int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(waiters)
		for t := 0; t < waiters; t++ {
			go func(tag int) {
				defer wg.Done()
				for k := 0; k < msgs/waiters; k++ {
					msg, err := c1.Recv(0, tag)
					if err != nil {
						b.Error(err)
						return
					}
					msg.Release()
				}
			}(t + 1)
		}
		for k := 0; k < msgs; k++ {
			if err := c0.Send(1, (k%waiters)+1, payload); err != nil {
				b.Fatal(err)
			}
		}
		wg.Wait()
	}
}
