package simmpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/mpi"
)

// Hot-path benchmarks for the CI bench gate (cmd/benchgate). Each
// iteration performs a fixed batch of work so a single `-benchtime 1x`
// sample is well above timer granularity.

const benchBatch = 2000

// BenchmarkPingPong measures the blocking send/recv round trip — the
// path every redundant message and every peer-checkpoint shard rides.
func BenchmarkPingPong(b *testing.B) {
	w, err := NewWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	payload := make([]byte, 256)
	// Prime the first-touch state (arena size-class pins, pair queues,
	// map buckets) so a single `-benchtime 1x` sample measures the
	// steady-state round trip, which is allocation-free.
	for _, dir := range [][2]*Comm{{c0, c1}, {c1, c0}} {
		if err := dir[0].Send(dir[1].Rank(), 1, payload); err != nil {
			b.Fatal(err)
		}
		msg, err := dir[1].Recv(dir[0].Rank(), 1)
		if err != nil {
			b.Fatal(err)
		}
		msg.Release()
	}
	b.SetBytes(benchBatch * int64(len(payload)) * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchBatch; j++ {
			if err := c0.Send(1, 1, payload); err != nil {
				b.Fatal(err)
			}
			msg, err := c1.Recv(0, 1)
			if err != nil {
				b.Fatal(err)
			}
			msg.Release()
			if err := c1.Send(0, 2, payload); err != nil {
				b.Fatal(err)
			}
			msg, err = c0.Recv(1, 2)
			if err != nil {
				b.Fatal(err)
			}
			msg.Release()
		}
	}
}

// BenchmarkFanInAnySource measures wildcard receives with competing
// senders — the peer-store Serve loop's steady state.
func BenchmarkFanInAnySource(b *testing.B) {
	const senders = 4
	w, err := NewWorld(senders + 1)
	if err != nil {
		b.Fatal(err)
	}
	sink, _ := w.Comm(senders)
	comms := make([]*Comm, senders)
	for r := range comms {
		comms[r], _ = w.Comm(r)
	}
	payload := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < benchBatch; j++ {
				msg, err := sink.Recv(mpi.AnySource, mpi.AnyTag)
				if err != nil {
					b.Error(err)
					return
				}
				msg.Release()
			}
		}()
		for j := 0; j < benchBatch; j++ {
			if err := comms[j%senders].Send(senders, 1, payload); err != nil {
				b.Fatal(err)
			}
		}
		<-done
	}
}

// BenchmarkEpochBoundary measures the partial-restart epoch machinery:
// Interrupt, Revive of one rank, Resume — the fixed cost every
// sphere-local recovery pays before any peer fetch.
func BenchmarkEpochBoundary(b *testing.B) {
	w, err := NewWorld(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchBatch; j++ {
			w.Kill(3)
			w.Interrupt()
			w.Revive(3)
			w.Resume()
		}
	}
}

// benchCGRank runs iters iterations of conjugate gradient on this
// rank's slice of a 1-D tridiagonal Laplacian (Dirichlet boundaries,
// b = 1): nearest-neighbor halo exchange for the matvec plus three
// global sum-reductions per iteration — the canonical bulk-synchronous
// HPC communication shape.
func benchCGRank(c *Comm, local, iters int) error {
	n, me := c.Size(), c.Rank()
	r := make([]float64, local)
	p := make([]float64, local)
	x := make([]float64, local)
	ap := make([]float64, local)
	for i := range r {
		r[i], p[i] = 1, 1
	}
	dot := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	var wire [8]byte
	halo := func(v []float64) (lo, hi float64, err error) {
		if me+1 < n {
			binary.LittleEndian.PutUint64(wire[:], math.Float64bits(v[local-1]))
			if err := c.Send(me+1, 1, wire[:]); err != nil {
				return 0, 0, err
			}
		}
		if me > 0 {
			binary.LittleEndian.PutUint64(wire[:], math.Float64bits(v[0]))
			if err := c.Send(me-1, 2, wire[:]); err != nil {
				return 0, 0, err
			}
		}
		if me > 0 {
			msg, err := c.Recv(me-1, 1)
			if err != nil {
				return 0, 0, err
			}
			lo = math.Float64frombits(binary.LittleEndian.Uint64(msg.Data))
			msg.Release()
		}
		if me+1 < n {
			msg, err := c.Recv(me+1, 2)
			if err != nil {
				return 0, 0, err
			}
			hi = math.Float64frombits(binary.LittleEndian.Uint64(msg.Data))
			msg.Release()
		}
		return lo, hi, nil
	}
	g, err := mpi.AllreduceFloat64s(c, []float64{dot(r, r)}, mpi.OpSum)
	if err != nil {
		return err
	}
	rho := g[0]
	for it := 0; it < iters; it++ {
		lo, hi, err := halo(p)
		if err != nil {
			return err
		}
		for i := range ap {
			v := 2 * p[i]
			if i > 0 {
				v -= p[i-1]
			} else {
				v -= lo
			}
			if i+1 < local {
				v -= p[i+1]
			} else {
				v -= hi
			}
			ap[i] = v
		}
		g, err = mpi.AllreduceFloat64s(c, []float64{dot(p, ap)}, mpi.OpSum)
		if err != nil {
			return err
		}
		alpha := rho / g[0]
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		g, err = mpi.AllreduceFloat64s(c, []float64{dot(r, r)}, mpi.OpSum)
		if err != nil {
			return err
		}
		beta := g[0] / rho
		rho = g[0]
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	if math.IsNaN(rho) || math.IsInf(rho, 0) {
		return fmt.Errorf("rank %d: residual diverged to %v", me, rho)
	}
	return nil
}

// BenchmarkCG10kRanks runs a short distributed CG solve across 10,000
// ranks — the mid-scale gate for the sharded mailbox table. Each
// iteration stands up a fresh world (table construction is part of the
// scaling story), runs the solve, and tears it down.
func BenchmarkCG10kRanks(b *testing.B) {
	const (
		ranks = 10_000
		local = 4
		iters = 4
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(ranks)
		if err != nil {
			b.Fatal(err)
		}
		appErr, failures := w.Run(func(c *Comm) error {
			return benchCGRank(c, local, iters)
		})
		if appErr != nil {
			b.Fatal(appErr)
		}
		if len(failures) != 0 {
			b.Fatalf("failures: %v", failures)
		}
	}
}

// BenchmarkBarrierAllreduce100k is the headline scale gate: 100,000
// virtual ranks complete a dissemination barrier and a global
// sum-reduction, verifying the exact sum on every rank. ~17 barrier
// rounds per rank plus the reduction tree exercises shard contention at
// nearly 200 ranks per shard.
func BenchmarkBarrierAllreduce100k(b *testing.B) {
	const ranks = 100_000
	want := float64(ranks) * float64(ranks+1) / 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(ranks)
		if err != nil {
			b.Fatal(err)
		}
		appErr, failures := w.Run(func(c *Comm) error {
			if err := mpi.Barrier(c); err != nil {
				return err
			}
			out, err := mpi.AllreduceFloat64s(c, []float64{float64(c.Rank() + 1)}, mpi.OpSum)
			if err != nil {
				return err
			}
			if out[0] != want {
				return fmt.Errorf("rank %d: sum %v, want %v", c.Rank(), out[0], want)
			}
			return nil
		})
		if appErr != nil {
			b.Fatal(appErr)
		}
		if len(failures) != 0 {
			b.Fatalf("failures: %v", failures)
		}
	}
}

// BenchmarkMailboxManyWaiters is the thundering-herd workload the
// targeted-wakeup rework attacks: many goroutines blocked on distinct
// tags of one mailbox while a sender deposits round-robin. With the old
// per-deposit Broadcast every deposit woke all waiters to rescan the
// queue and park again (O(waiters) wakeups per message); per-selector
// wait queues wake exactly the matching waiter.
func BenchmarkMailboxManyWaiters(b *testing.B) {
	const waiters = 32
	const msgs = benchBatch
	w, err := NewWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	payload := make([]byte, 64)
	b.SetBytes(msgs * int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(waiters)
		for t := 0; t < waiters; t++ {
			go func(tag int) {
				defer wg.Done()
				for k := 0; k < msgs/waiters; k++ {
					msg, err := c1.Recv(0, tag)
					if err != nil {
						b.Error(err)
						return
					}
					msg.Release()
				}
			}(t + 1)
		}
		for k := 0; k < msgs; k++ {
			if err := c0.Send(1, (k%waiters)+1, payload); err != nil {
				b.Fatal(err)
			}
		}
		wg.Wait()
	}
}
