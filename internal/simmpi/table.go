package simmpi

import (
	"sync"
	"sync/atomic"

	"repro/internal/mpi"
)

// mboxTable is the sharded mailbox table: destination ranks are striped
// across power-of-two lock shards, so a 100k-rank world's traffic
// spreads over up to maxShards independent locks instead of a mutex and
// condvar pair per rank. For worlds at or below maxShards ranks the
// striping degenerates to one shard per rank — exactly the old per-rank
// locking — so small-world behavior (every existing test and benchmark)
// is unchanged by construction.
//
// Liveness transitions (kill, abort, interrupt, resume) no longer sweep
// every rank: each shard advertises whether it holds parked waiters in
// an atomic flag, and broadcasts walk only the flagged shards' active
// wait queues. The cost of a transition is O(parked waiters) + one
// atomic load per shard, independent of world size — the "O(active
// ranks), not O(world)" contract the failure injector and epoch gate
// rely on at scale (see DESIGN.md §7 for the missed-wakeup proof
// obligations).
type mboxTable struct {
	world  *World
	shards []mboxShard
	mask   uint32
}

// maxShards caps the stripe count. 512 shards keep the table's fixed
// footprint trivial while giving a 100k-rank world ~200 ranks per lock;
// beyond that, contention is dominated by per-rank fan-in, which
// striping cannot help (one destination's matching is inherently
// serialized, as it was with per-rank mutexes).
const maxShards = 512

func shardCount(n int) int {
	s := 1
	for s < n && s < maxShards {
		s <<= 1
	}
	return s
}

func newMboxTable(w *World, n int) *mboxTable {
	s := shardCount(n)
	t := &mboxTable{world: w, shards: make([]mboxShard, s), mask: uint32(s - 1)}
	for i := range t.shards {
		t.shards[i].boxes = make(map[int]*rankBox)
	}
	if n <= denseCountThreshold {
		// Small worlds (the latency-sensitive tier): materialize every
		// box up front so first-message hot paths never pay lazy-init
		// allocations. Large worlds stay lazy — that is what keeps
		// NewWorld(100k) cheap.
		for r := 0; r < n; r++ {
			sh := t.shardFor(r)
			sh.boxes[r] = newRankBox(r)
			if sh.dirty == nil {
				sh.dirty = make([]*rankBox, 0, 4)
				sh.active = make([]*waitQueue, 0, 4)
			}
		}
	}
	return t
}

// shardFor maps a destination rank to its shard. Identity-modulo keeps
// neighboring ranks (halo exchanges, ring collectives) on distinct
// locks, and reduces to one-shard-per-rank for worlds ≤ maxShards.
func (t *mboxTable) shardFor(rank int) *mboxShard {
	return &t.shards[uint32(rank)&t.mask]
}

// mboxShard is one lock stripe of the table. All box state (queues,
// waiter registration, free lists) is guarded by mu; hasWaiters is the
// lock-free hint liveness sweeps read to skip idle shards.
type mboxShard struct {
	mu    sync.Mutex
	boxes map[int]*rankBox // lazily created per destination rank

	// active is the dense list of wait queues with registered waiters —
	// the shard-local work list a liveness broadcast walks. Entries
	// track their index for O(1) swap-removal.
	active     []*waitQueue
	nwaiters   int
	hasWaiters atomic.Bool

	// dirty lists boxes that have seen deposits since the last purge
	// sweep, so Resume touches only ranks with traffic.
	dirty []*rankBox

	// Free lists recycle the two park-path allocations (selector wait
	// queues and pair FIFOs), which is what takes the collective fan-in
	// path from ~2 allocations per message to zero in steady state.
	freeWait *waitQueue
	freePair *pairQueue
}

// box returns (creating lazily) the rank's box. Caller holds s.mu.
// Lazy creation is what makes NewWorld O(1) per rank at 100k ranks: a
// rank that never receives traffic costs one map slot, not a mutex, a
// condvar, and a queue.
func (s *mboxShard) box(rank int) *rankBox {
	b := s.boxes[rank]
	if b == nil {
		b = newRankBox(rank)
		s.boxes[rank] = b
	}
	return b
}

func (s *mboxShard) allocPairQueue(k pairKey) *pairQueue {
	q := s.freePair
	if q == nil {
		q = &pairQueue{}
	} else {
		s.freePair = q.nextFree
		q.nextFree = nil
	}
	q.key = k
	return q
}

func (s *mboxShard) freePairQueue(q *pairQueue) {
	q.nextFree = s.freePair
	s.freePair = q
}

// register parks bookkeeping for one waiter on (box, key): the waiter is
// counted before its final liveness re-check, which is the ordering the
// lock-free hasWaiters hint depends on (see wakeAll). Caller holds s.mu.
func (s *mboxShard) register(b *rankBox, k waitKey) *waitQueue {
	q := b.waiters[k]
	if q == nil {
		q = s.freeWait
		if q == nil {
			q = &waitQueue{cond: sync.NewCond(&s.mu), activeIdx: -1}
		} else {
			s.freeWait = q.nextFree
			q.nextFree = nil
		}
		b.waiters[k] = q
	}
	if q.n == 0 {
		q.activeIdx = len(s.active)
		s.active = append(s.active, q)
	}
	q.n++
	s.nwaiters++
	if s.nwaiters == 1 {
		s.hasWaiters.Store(true)
	}
	return q
}

// deregister undoes register. Caller holds s.mu.
func (s *mboxShard) deregister(b *rankBox, k waitKey, q *waitQueue) {
	q.n--
	s.nwaiters--
	if s.nwaiters == 0 {
		s.hasWaiters.Store(false)
	}
	if q.n == 0 {
		// Swap-remove from the active list.
		last := len(s.active) - 1
		moved := s.active[last]
		s.active[q.activeIdx] = moved
		moved.activeIdx = q.activeIdx
		s.active[last] = nil
		s.active = s.active[:last]
		q.activeIdx = -1
		delete(b.waiters, k)
		q.nextFree = s.freeWait
		s.freeWait = q
	}
}

// signalArrival wakes waiters able to consume a newly arrived
// (source, tag) message: every selector pattern the message matches is
// signaled — the exact key and the three wildcard forms — with one
// Signal (wake-one) per queue. Stopping at the first populated queue
// would be unsound: sync.Cond.Signal is delivered only to goroutines
// currently blocked in Wait, so when that queue's registered waiters
// are all momentarily awake (woken earlier, not yet re-holding the
// lock) the Signal is a silent no-op — and an early return would then
// skip the wildcard queues, stranding a parked waiter even though a
// message it matches sits in the box (the awake waiter may consume a
// *different*, earlier-arrived message and leave). Per-queue wake-one
// remains sound: a Signal is lost only when none of that queue's
// waiters are parked, and an awake waiter always re-scans the box
// exhaustively under the shard lock before parking again, so it cannot
// park with a deliverable message present. Patterns with no registered
// waiters cost one map lookup and no wakeup, so the collective fan-in
// hot path (a single AnySource selector live) still pays for exactly
// one Signal per message. Caller holds s.mu.
func (s *mboxShard) signalArrival(b *rankBox, src, tag int) {
	if len(b.waiters) == 0 {
		return
	}
	s.signalKey(b, waitKey{src, tag})
	s.signalKey(b, waitKey{src, mpi.AnyTag})
	s.signalKey(b, waitKey{mpi.AnySource, tag})
	s.signalKey(b, waitKey{mpi.AnySource, mpi.AnyTag})
}

func (s *mboxShard) signalKey(b *rankBox, k waitKey) {
	if q := b.waiters[k]; q != nil && q.n > 0 {
		q.cond.Signal()
	}
}

// deposit enqueues a message and reports whether it was accepted.
// Deposits to dead ranks, aborted worlds, or interrupted epochs are
// dropped (returning false), like packets to a crashed node (an
// interrupted epoch's traffic is recomputed from the checkpoint anyway);
// the caller still owns pb's reference on that path and must release it.
// On acceptance the reference rides the envelope to the receiver.
func (t *mboxTable) deposit(dst, src, tag int, data []byte, pb *mpi.PooledBuf) bool {
	w := t.world
	if w.aborted.Load() || w.interrupted.Load() || w.dead.get(dst) {
		return false
	}
	s := t.shardFor(dst)
	s.mu.Lock()
	b := s.box(dst)
	b.depositLocked(s, src, tag, data, pb)
	if !b.dirty {
		b.dirty = true
		s.dirty = append(s.dirty, b)
	}
	w.met.mailboxHWM.SetMax(int64(b.nq))
	s.signalArrival(b, src, tag)
	s.mu.Unlock()
	return true
}

// receive blocks until a message matching (src, tag) is available and
// removes and returns it. It unblocks with an error when the owner is
// killed, the world aborts, or a specific awaited peer dies first.
// A message already delivered before the peer died is still returned:
// death invalidates only *future* traffic.
//
// Waiter protocol: the waiter registers (under the shard lock) before
// its final liveness check, then blocks on the selector's condition —
// never re-polling. A concurrent Kill stores the dead bit first and
// reads hasWaiters second; in the seq-cst total order either the kill's
// flag read sees this waiter (and the broadcast reaches it), or this
// waiter's liveness check sees the dead bit (and it never parks). Both
// orders are safe; there is no window for a missed wakeup.
func (t *mboxTable) receive(owner, src, tag int) (mpi.Message, error) {
	s := t.shardFor(owner)
	s.mu.Lock()
	b := s.box(owner)
	var q *waitQueue
	k := waitKey{src, tag}
	for {
		if e, ok := b.match(s, src, tag); ok {
			if q != nil {
				s.deregister(b, k, q)
			}
			s.mu.Unlock()
			return mpi.NewMessage(e.source, e.tag, e.data, e.buf), nil
		}
		if q == nil {
			q = s.register(b, k)
		}
		if err := t.world.errIfDown(owner, src); err != nil {
			s.deregister(b, k, q)
			s.mu.Unlock()
			return mpi.Message{}, err
		}
		q.cond.Wait()
	}
}

// tryReceive attempts a non-blocking matched receive.
func (t *mboxTable) tryReceive(owner, src, tag int) (mpi.Message, bool, error) {
	s := t.shardFor(owner)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.box(owner)
	if e, ok := b.match(s, src, tag); ok {
		return mpi.NewMessage(e.source, e.tag, e.data, e.buf), true, nil
	}
	if err := t.world.errIfDown(owner, src); err != nil {
		return mpi.Message{}, true, err
	}
	return mpi.Message{}, false, nil
}

// probe blocks until a matching message is available and returns its
// envelope without consuming it.
func (t *mboxTable) probe(owner, src, tag int) (mpi.Status, error) {
	s := t.shardFor(owner)
	s.mu.Lock()
	b := s.box(owner)
	var q *waitQueue
	k := waitKey{src, tag}
	for {
		if e, ok := b.peek(src, tag); ok {
			if q != nil {
				s.deregister(b, k, q)
			}
			// The probe may have absorbed its queue's per-message Signal
			// without consuming the message; chain the wakeup onward
			// (routed by the envelope's real coordinates so every queue
			// that matches it is re-signaled) so a sibling receive parked
			// on the same selector is not stranded with a deliverable
			// message in the box.
			s.signalArrival(b, e.source, e.tag)
			s.mu.Unlock()
			return mpi.Status{Source: e.source, Tag: e.tag, Len: len(e.data)}, nil
		}
		if q == nil {
			q = s.register(b, k)
		}
		if err := t.world.errIfDown(owner, src); err != nil {
			s.deregister(b, k, q)
			s.mu.Unlock()
			return mpi.Status{}, err
		}
		q.cond.Wait()
	}
}

// pending returns the number of unmatched messages addressed to rank,
// for tests and the bookmark-exchange verifier.
func (t *mboxTable) pending(rank int) int {
	s := t.shardFor(rank)
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.boxes[rank]; b != nil {
		return b.nq
	}
	return 0
}

// wakeAll broadcasts every registered waiter so it re-checks its
// liveness predicates. Only shards advertising waiters are locked, and
// within a shard only the active wait queues are walked: the cost is
// O(parked waiters), not O(world size). Returns the number of
// registered waiters notified — q.n counts a waiter from register to
// deregister, so one that is momentarily awake re-scanning (not blocked
// in Wait) is included even though the Broadcast does not unpark it.
// The count is therefore an upper bound on goroutines actually woken;
// it equals them exactly when every registered waiter is quiescently
// parked, which is the regime the epoch-gate wakeup budget tests
// arrange before asserting on it.
func (t *mboxTable) wakeAll() int {
	woken := 0
	for i := range t.shards {
		s := &t.shards[i]
		if !s.hasWaiters.Load() {
			continue
		}
		s.mu.Lock()
		for _, q := range s.active {
			q.cond.Broadcast()
			woken += q.n
		}
		s.mu.Unlock()
	}
	return woken
}

// purgeRank discards rank's unmatched messages and wakes its waiters
// (Revive: the previous incarnation's unread traffic belongs to the
// interrupted epoch).
func (t *mboxTable) purgeRank(rank int) {
	s := t.shardFor(rank)
	s.mu.Lock()
	if b := s.boxes[rank]; b != nil {
		b.purgeLocked(s)
		for _, q := range b.waiters {
			q.cond.Broadcast()
		}
	}
	s.mu.Unlock()
}

// purgeAll discards every rank's unmatched messages and wakes all
// waiters — the epoch boundary sweep. Only boxes on the dirty lists are
// visited, so the cost is O(ranks with traffic since the last sweep).
func (t *mboxTable) purgeAll() {
	for i := range t.shards {
		s := &t.shards[i]
		// Lock unconditionally: a shard with traffic but no waiters has
		// a clear hasWaiters flag yet still needs its purge.
		s.mu.Lock()
		for _, b := range s.dirty {
			b.purgeLocked(s)
			b.dirty = false
		}
		s.dirty = s.dirty[:0]
		for _, q := range s.active {
			q.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}
