package simmpi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

func newTestWorld(t *testing.T, n int) *World {
	t.Helper()
	w, err := NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func comm(t *testing.T, w *World, rank int) *Comm {
	t.Helper()
	c, err := w.Comm(rank)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewWorldRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewWorld(n); err == nil {
			t.Errorf("NewWorld(%d) should fail", n)
		}
	}
}

func TestCommRejectsBadRank(t *testing.T) {
	w := newTestWorld(t, 2)
	if _, err := w.Comm(2); !errors.Is(err, mpi.ErrInvalidRank) {
		t.Errorf("Comm(2) err = %v, want ErrInvalidRank", err)
	}
	if _, err := w.Comm(-1); !errors.Is(err, mpi.ErrInvalidRank) {
		t.Errorf("Comm(-1) err = %v, want ErrInvalidRank", err)
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	want := []byte("hello rank 1")
	if err := c0.Send(1, 7, want); err != nil {
		t.Fatal(err)
	}
	msg, err := c1.Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Source != 0 || msg.Tag != 7 || !bytes.Equal(msg.Data, want) {
		t.Fatalf("got %+v, want source 0 tag 7 data %q", msg, want)
	}
}

func TestSendCopiesBuffer(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	buf := []byte("original")
	if err := c0.Send(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "mutated!")
	msg, err := c1.Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "original" {
		t.Fatalf("send aliased the caller's buffer: got %q", msg.Data)
	}
}

func TestFIFOPerSourceTag(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	for i := 0; i < 100; i++ {
		if err := c0.Send(1, 5, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		msg, err := c1.Recv(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Data[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, msg.Data[0])
		}
	}
}

func TestTagSelectivity(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	if err := c0.Send(1, 1, []byte("tag1")); err != nil {
		t.Fatal(err)
	}
	if err := c0.Send(1, 2, []byte("tag2")); err != nil {
		t.Fatal(err)
	}
	// Receive tag 2 first even though tag 1 arrived earlier.
	msg, err := c1.Recv(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "tag2" {
		t.Fatalf("tag-selective recv got %q", msg.Data)
	}
	msg, err = c1.Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "tag1" {
		t.Fatalf("second recv got %q", msg.Data)
	}
}

func TestAnySourceReceivesEarliest(t *testing.T) {
	w := newTestWorld(t, 3)
	c0, c1, c2 := comm(t, w, 0), comm(t, w, 1), comm(t, w, 2)
	if err := c1.Send(0, 3, []byte("from1")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Send(0, 3, []byte("from2")); err != nil {
		t.Fatal(err)
	}
	msg, err := c0.Recv(mpi.AnySource, 3)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Source != 1 {
		t.Fatalf("wildcard recv matched source %d, want earliest arrival 1", msg.Source)
	}
}

func TestAnyTag(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	if err := c0.Send(1, 42, []byte("x")); err != nil {
		t.Fatal(err)
	}
	msg, err := c1.Recv(0, mpi.AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Tag != 42 {
		t.Fatalf("AnyTag recv got tag %d", msg.Tag)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	got := make(chan mpi.Message, 1)
	go func() {
		msg, err := c1.Recv(0, 0)
		if err != nil {
			t.Errorf("recv: %v", err)
		}
		got <- msg
	}()
	select {
	case <-got:
		t.Fatal("recv completed before send")
	case <-time.After(20 * time.Millisecond):
	}
	if err := c0.Send(1, 0, []byte("late")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if string(msg.Data) != "late" {
			t.Fatalf("got %q", msg.Data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv never completed after send")
	}
}

func TestProbeDoesNotConsume(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	if err := c0.Send(1, 9, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	st, err := c1.Probe(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != 0 || st.Tag != 9 || st.Len != 3 {
		t.Fatalf("probe status %+v", st)
	}
	msg, err := c1.Recv(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "abc" {
		t.Fatalf("message consumed by probe: %q", msg.Data)
	}
}

func TestIsendCompletesImmediately(t *testing.T) {
	w := newTestWorld(t, 2)
	c0 := comm(t, w, 0)
	req, err := c0.Isend(1, 0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	done, _, _, err := req.Test()
	if !done || err != nil {
		t.Fatalf("Isend request: done=%v err=%v", done, err)
	}
}

func TestIrecvWaitAndMessage(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	req, err := c1.Irecv(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if done, _, _, _ := req.Test(); done {
		t.Fatal("Irecv complete before send")
	}
	if err := c0.Send(1, 4, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	msg, st, err := req.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.Len != 7 || st.Source != 0 {
		t.Fatalf("status %+v", st)
	}
	if string(msg.Data) != "payload" {
		t.Fatalf("message %q", msg.Data)
	}
	// Wait is idempotent: repeated calls return the same delivery.
	if again, _, err := req.Wait(); err != nil || string(again.Data) != "payload" {
		t.Fatalf("second Wait: %q err=%v", again.Data, err)
	}
	msg.Release()
}

func TestIrecvTestCompletion(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	req, err := c1.Irecv(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.Send(1, 4, []byte("z")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		done, msg, st, err := req.Test()
		if done {
			if err != nil || st.Len != 1 || string(msg.Data) != "z" {
				t.Fatalf("done=%v st=%+v msg=%q err=%v", done, st, msg.Data, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Test never completed")
		}
	}
}

func TestWaitAllCollectsFirstError(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	r1, err := c1.Irecv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.Send(1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := mpi.WaitAll(r1, nil); err != nil {
		t.Fatalf("WaitAll = %v", err)
	}
}

func TestKillUnblocksOwnRecv(t *testing.T) {
	w := newTestWorld(t, 2)
	c1 := comm(t, w, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := c1.Recv(0, 0)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Kill(1)
	select {
	case err := <-errCh:
		if !errors.Is(err, mpi.ErrKilled) {
			t.Fatalf("err = %v, want ErrKilled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("kill did not unblock recv")
	}
}

func TestPeerDeathUnblocksSpecificRecv(t *testing.T) {
	w := newTestWorld(t, 2)
	c1 := comm(t, w, 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := c1.Recv(0, 0)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Kill(0)
	select {
	case err := <-errCh:
		if !errors.Is(err, mpi.ErrPeerDead) {
			t.Fatalf("err = %v, want ErrPeerDead", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer death did not unblock recv")
	}
}

func TestMessageBeforeDeathStillDelivered(t *testing.T) {
	w := newTestWorld(t, 2)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	if err := c0.Send(1, 0, []byte("last words")); err != nil {
		t.Fatal(err)
	}
	w.Kill(0)
	msg, err := c1.Recv(0, 0)
	if err != nil {
		t.Fatalf("message sent before death must be deliverable, got %v", err)
	}
	if string(msg.Data) != "last words" {
		t.Fatalf("got %q", msg.Data)
	}
	// A second receive now fails: the peer is dead and nothing is queued.
	if _, err := c1.Recv(0, 0); !errors.Is(err, mpi.ErrPeerDead) {
		t.Fatalf("err = %v, want ErrPeerDead", err)
	}
}

func TestSendToDeadRankDropped(t *testing.T) {
	w := newTestWorld(t, 2)
	c0 := comm(t, w, 0)
	w.Kill(1)
	if err := c0.Send(1, 0, []byte("into the void")); err != nil {
		t.Fatalf("send to dead rank should be dropped silently, got %v", err)
	}
}

func TestSendFromKilledRankFails(t *testing.T) {
	w := newTestWorld(t, 2)
	c0 := comm(t, w, 0)
	w.Kill(0)
	if err := c0.Send(1, 0, nil); !errors.Is(err, mpi.ErrKilled) {
		t.Fatalf("err = %v, want ErrKilled", err)
	}
	if _, err := c0.Recv(1, 0); !errors.Is(err, mpi.ErrKilled) {
		t.Fatalf("recv err = %v, want ErrKilled", err)
	}
}

func TestAbortUnblocksEveryone(t *testing.T) {
	w := newTestWorld(t, 4)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := comm(t, w, rank)
			_, errs[rank] = c.Recv(mpi.AnySource, 0)
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	w.Abort()
	wg.Wait()
	for rank, err := range errs {
		if !errors.Is(err, mpi.ErrAborted) {
			t.Fatalf("rank %d err = %v, want ErrAborted", rank, err)
		}
	}
	if !w.Aborted() {
		t.Fatal("Aborted() = false after Abort")
	}
}

func TestKillBookkeeping(t *testing.T) {
	w := newTestWorld(t, 4)
	if w.AliveCount() != 4 || w.Deaths() != 0 {
		t.Fatalf("fresh world: alive=%d deaths=%d", w.AliveCount(), w.Deaths())
	}
	w.Kill(2)
	w.Kill(2) // idempotent
	w.Kill(-1)
	w.Kill(99)
	if w.AliveCount() != 3 || w.Deaths() != 1 {
		t.Fatalf("after kill: alive=%d deaths=%d", w.AliveCount(), w.Deaths())
	}
	if w.Alive(2) || !w.Alive(0) {
		t.Fatal("liveness flags wrong")
	}
}

func TestCountTracking(t *testing.T) {
	w := newTestWorld(t, 3)
	c0, c1 := comm(t, w, 0), comm(t, w, 1)
	for i := 0; i < 5; i++ {
		if err := c0.Send(1, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := c1.Recv(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := c0.SentCounts(); got[1] != 5 || got[0] != 0 || got[2] != 0 {
		t.Fatalf("sent counts %v", got)
	}
	if got := c1.RecvCounts(); got[0] != 5 {
		t.Fatalf("recv counts %v", got)
	}
	if c1.PendingMessages() != 0 {
		t.Fatalf("pending = %d, want 0", c1.PendingMessages())
	}
}

func TestRunCollectsAppError(t *testing.T) {
	w := newTestWorld(t, 3)
	boom := fmt.Errorf("app exploded")
	appErr, failures := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		return nil
	})
	if appErr == nil || !errors.Is(appErr, boom) {
		t.Fatalf("appErr = %v", appErr)
	}
	var re RankError
	if !errors.As(appErr, &re) || re.Rank != 1 {
		t.Fatalf("appErr = %#v, want RankError{Rank: 1}", appErr)
	}
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
}

func TestRunSeparatesFailureErrors(t *testing.T) {
	w := newTestWorld(t, 2)
	w.Kill(1)
	appErr, failures := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			_, err := c.Recv(0, 0)
			return err
		}
		return nil
	})
	if appErr != nil {
		t.Fatalf("appErr = %v, want nil (kill-induced errors are not app errors)", appErr)
	}
	if len(failures) != 1 || failures[0].Rank != 1 {
		t.Fatalf("failures = %v", failures)
	}
}

func TestManyRanksPingPongStress(t *testing.T) {
	const n = 32
	w := newTestWorld(t, n)
	appErr, failures := w.Run(func(c *Comm) error {
		peer := (c.Rank() + n/2) % n
		for i := 0; i < 50; i++ {
			if err := c.Send(peer, i, []byte{byte(c.Rank()), byte(i)}); err != nil {
				return err
			}
			msg, err := c.Recv(peer, i)
			if err != nil {
				return err
			}
			if msg.Data[0] != byte(peer) || msg.Data[1] != byte(i) {
				return fmt.Errorf("bad payload %v", msg.Data)
			}
		}
		return nil
	})
	if appErr != nil || len(failures) != 0 {
		t.Fatalf("appErr=%v failures=%v", appErr, failures)
	}
}
