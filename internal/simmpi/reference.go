//go:build simmpi_ref

package simmpi

import (
	"repro/internal/mpi"
)

// refRuntime is the single-lock reference model of the runtime's
// matching and liveness semantics, kept behind the simmpi_ref build tag
// as the oracle for the sharded implementation: one global arrival-
// ordered queue per destination, matched by linear scan — the original
// pre-sharding design, small enough to audit by eye.
//
// It is driven sequentially by the property test (no locking needed),
// which replays identical operation scripts against a real World and
// this model and requires byte-identical outcomes: delivery order per
// (src, dst, tag), drop decisions, and error classes.
type refRuntime struct {
	n           int
	queues      [][]refMsg
	dead        []bool
	interrupted bool
}

type refMsg struct {
	src, tag int
	data     []byte
}

func newRefRuntime(n int) *refRuntime {
	return &refRuntime{n: n, queues: make([][]refMsg, n), dead: make([]bool, n)}
}

// send mirrors Comm.Send: sender-side liveness errors, silent drop to a
// dead or interrupted destination.
func (r *refRuntime) send(src, dst, tag int, data []byte) error {
	if r.dead[src] {
		return mpi.ErrKilled
	}
	if r.interrupted {
		return mpi.ErrInterrupted
	}
	if r.dead[dst] {
		return nil // dropped, like a packet to a crashed node
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	r.queues[dst] = append(r.queues[dst], refMsg{src: src, tag: tag, data: cp})
	return nil
}

// errIfDown mirrors World.errIfDown's check order.
func (r *refRuntime) errIfDown(owner, src int) error {
	if r.dead[owner] {
		return mpi.ErrKilled
	}
	if r.interrupted {
		return mpi.ErrInterrupted
	}
	if src != mpi.AnySource && r.dead[src] {
		return mpi.ErrPeerDead
	}
	return nil
}

// tryRecv mirrors mboxTable.tryReceive: match strictly precedes the
// liveness check, so queued messages drain even from a dead owner or an
// awaited peer that died after sending.
func (r *refRuntime) tryRecv(owner, src, tag int) (refMsg, bool, error) {
	q := r.queues[owner]
	for i, m := range q {
		if matchesSelector(m.src, m.tag, src, tag) {
			r.queues[owner] = append(q[:i], q[i+1:]...)
			return m, true, nil
		}
	}
	if err := r.errIfDown(owner, src); err != nil {
		return refMsg{}, true, err
	}
	return refMsg{}, false, nil
}

func (r *refRuntime) kill(rank int)        { r.dead[rank] = true }
func (r *refRuntime) interrupt()           { r.interrupted = true }
func (r *refRuntime) pending(rank int) int { return len(r.queues[rank]) }

// revive mirrors World.Revive: the rank rejoins with a wiped queue.
func (r *refRuntime) revive(rank int) {
	if !r.dead[rank] {
		return
	}
	r.dead[rank] = false
	r.queues[rank] = nil
}

// resume mirrors World.Resume: purge everything, end the interrupt.
func (r *refRuntime) resume() {
	for i := range r.queues {
		r.queues[i] = nil
	}
	r.interrupted = false
}
