package simmpi

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
)

func TestWorldCountersTrackTraffic(t *testing.T) {
	reg := obs.NewRegistry()
	w, err := NewWorld(2, WithObs(reg))
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	payload := []byte("hello")
	if err := c0.Send(1, 7, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Recv(0, 7); err != nil {
		t.Fatal(err)
	}
	// A send to a dead peer is accepted and dropped.
	w.Kill(1)
	if err := c0.Send(1, 7, payload); err != nil {
		t.Fatal(err)
	}
	w.Abort()

	snap := reg.Snapshot()
	checks := map[string]uint64{
		"simmpi_sends_total":      2,
		"simmpi_recvs_total":      1,
		"simmpi_send_bytes_total": 2 * uint64(len(payload)),
		"simmpi_drops_total":      1,
		"simmpi_kills_total":      1,
		"simmpi_aborts_total":     1,
	}
	for name, want := range checks {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauge("simmpi_mailbox_depth_hwm"); got < 1 {
		t.Errorf("mailbox HWM = %d, want >= 1", got)
	}
	if w.Deaths() != 1 {
		t.Errorf("Deaths = %d, want 1 (registry-backed)", w.Deaths())
	}
	if w.Obs() != reg {
		t.Error("Obs did not return the injected registry")
	}
}

func TestWorldDefaultPrivateRegistry(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Obs() == nil {
		t.Fatal("default world has no registry")
	}
	w.Kill(0)
	if w.Deaths() != 1 {
		t.Fatalf("Deaths = %d, want 1", w.Deaths())
	}
	if got := w.Obs().Snapshot().Counter("simmpi_kills_total"); got != 1 {
		t.Fatalf("simmpi_kills_total = %d, want 1", got)
	}
}

func TestWorldObsNilDisablesTelemetry(t *testing.T) {
	w, err := NewWorld(2, WithObs(nil))
	if err != nil {
		t.Fatal(err)
	}
	c0, _ := w.Comm(0)
	c1, _ := w.Comm(1)
	if err := c0.Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Recv(0, 1); err != nil {
		t.Fatal(err)
	}
	if w.Obs() != nil {
		t.Fatal("WithObs(nil) kept a registry")
	}
}

// obsPingPong is the stress workload both the benchmark and the
// overhead-budget guard share: pairs of ranks exchanging fixed-size
// messages, dominated by mailbox matching — the runtime's hot path.
func obsPingPong(w *World, rounds int) error {
	appErr, failures := w.Run(func(c *Comm) error {
		peer := c.Rank() ^ 1
		buf := make([]byte, 256)
		for i := 0; i < rounds; i++ {
			if c.Rank()%2 == 0 {
				if err := c.Send(peer, 1, buf); err != nil {
					return err
				}
				if _, err := c.Recv(peer, 2); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(peer, 1); err != nil {
					return err
				}
				if err := c.Send(peer, 2, buf); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if appErr != nil {
		return appErr
	}
	if len(failures) > 0 {
		return fmt.Errorf("unexpected failure errors: %v", failures)
	}
	return nil
}

func benchWorld(b *testing.B, opts ...Option) {
	b.Helper()
	w, err := NewWorld(4, opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := obsPingPong(w, b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkObsOverhead compares the enabled-registry hot path against
// the no-op (WithObs(nil)) path on a message-passing stress workload.
// CI guards the ratio via TestObsOverheadBudget.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("enabled", func(b *testing.B) { benchWorld(b, WithObs(obs.NewRegistry())) })
	b.Run("disabled", func(b *testing.B) { benchWorld(b, WithObs(nil)) })
	b.Run("flight", func(b *testing.B) {
		benchWorld(b, WithObs(obs.NewRegistry()), mpi.WithFlight(obs.NewRecorder(0, false)))
	})
}

// TestObsOverheadBudget asserts that leaving the registry enabled costs
// under 5% on the messaging stress path. Trials alternate between the
// two modes and the minima are compared, which suppresses scheduler and
// GC noise; a small absolute epsilon absorbs timer granularity.
func TestObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race-instrumented atomics cost multiples of their production price")
	}
	const (
		rounds = 20000
		trials = 5
	)
	measure := func(opts ...Option) time.Duration {
		w, err := NewWorld(4, opts...)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := obsPingPong(w, rounds); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	big := time.Duration(1 << 62)
	minEnabled, minDisabled, minFlight := big, big, big
	// Warm-up pass to fault in code paths before timing.
	measure(WithObs(nil))
	for i := 0; i < trials; i++ {
		if d := measure(WithObs(obs.NewRegistry())); d < minEnabled {
			minEnabled = d
		}
		if d := measure(WithObs(nil)); d < minDisabled {
			minDisabled = d
		}
		if d := measure(WithObs(obs.NewRegistry()),
			mpi.WithFlight(obs.NewRecorder(0, false))); d < minFlight {
			minFlight = d
		}
	}
	budget := minDisabled + minDisabled/20 + 2*time.Millisecond
	if minEnabled > budget {
		t.Fatalf("enabled registry too expensive: enabled=%v disabled=%v budget=%v",
			minEnabled, minDisabled, budget)
	}
	if minFlight > budget {
		t.Fatalf("flight recorder too expensive: flight=%v disabled=%v budget=%v",
			minFlight, minDisabled, budget)
	}
	t.Logf("obs overhead: enabled=%v flight=%v disabled=%v (%.2f%% / %.2f%%)",
		minEnabled, minFlight, minDisabled,
		100*(float64(minEnabled)-float64(minDisabled))/float64(minDisabled),
		100*(float64(minFlight)-float64(minDisabled))/float64(minDisabled))
}
