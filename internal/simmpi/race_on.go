//go:build race

package simmpi

// raceEnabled reports whether the race detector instruments this build.
// Timing-budget tests skip under it (instrumented atomics cost multiples
// of their production price) and the buffer arena poisons recycled
// buffers so use-after-release reads are deterministic garbage.
const raceEnabled = true
