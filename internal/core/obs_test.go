package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/obs"
)

// obsConfig is a small fixed job used by the telemetry tests: 4 virtual
// ranks at 2x with checkpointing every 10 steps.
func obsConfig(tr *obs.Tracer) Config {
	return Config{
		Ranks:          4,
		Degree:         2,
		StepInterval:   10,
		AttemptTimeout: time.Minute,
		Tracer:         tr,
	}
}

func TestResultMetricsPopulated(t *testing.T) {
	res, err := Run(obsConfig(nil), cgFactory(t, 6, 30))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	checks := []struct {
		name string
		want string // "nonzero" or "zero"
	}{
		{"simmpi_sends_total", "nonzero"},
		{"simmpi_recvs_total", "nonzero"},
		{"simmpi_send_bytes_total", "nonzero"},
		{"redundancy_virtual_sends_total", "nonzero"},
		{"redundancy_physical_sends_total", "nonzero"},
		{"redundancy_votes_total", "nonzero"},
		{"checkpoint_attempted_total", "nonzero"},
		{"checkpoint_committed_total", "nonzero"},
		{"checkpoint_bytes_written_total", "nonzero"},
		{"runner_attempts_total", "nonzero"},
		{"runner_completions_total", "nonzero"},
		{"redundancy_mismatches_total", "zero"},
		{"runner_restarts_total", "zero"},
		{"failure_kills_total", "zero"},
	}
	for _, c := range checks {
		got := m.Counter(c.name)
		if c.want == "nonzero" && got == 0 {
			t.Errorf("%s = 0, want nonzero", c.name)
		}
		if c.want == "zero" && got != 0 {
			t.Errorf("%s = %d, want 0", c.name, got)
		}
	}
	// Duplicate-send overhead: at full 2x every virtual send fans out to
	// two physical sends.
	if v, p := m.Counter("redundancy_virtual_sends_total"),
		m.Counter("redundancy_physical_sends_total"); p != 2*v {
		t.Errorf("physical sends %d != 2 * virtual sends %d at degree 2", p, v)
	}
	if m.Gauge("simmpi_mailbox_depth_hwm") <= 0 {
		t.Error("mailbox high-water mark not recorded")
	}
}

func TestExternalRegistryReceivesJobCounters(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := Run(Config{
		Ranks:          4,
		Degree:         1,
		AttemptTimeout: time.Minute,
		Obs:            reg,
	}, cgFactory(t, 6, 20))
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("runner_attempts_total").Value(); got != 1 {
		t.Errorf("runner_attempts_total = %d, want 1", got)
	}
	if reg.Counter("simmpi_sends_total").Value() == 0 {
		t.Error("caller-supplied registry missing folded simmpi counters")
	}
	if res.Metrics.Counter("simmpi_sends_total") !=
		reg.Counter("simmpi_sends_total").Value() {
		t.Error("Result.Metrics disagrees with caller-supplied registry")
	}
}

// TestTraceDeterministicAcrossRuns is the second half of satellite 3: two
// identical failure-free runs must emit byte-identical ordered traces,
// replica vs replica and run vs run.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	runOnce := func() []obs.Event {
		tr := obs.NewTracer(nil)
		if _, err := Run(obsConfig(tr), cgFactory(t, 6, 30)); err != nil {
			t.Fatal(err)
		}
		return tr.Events()
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 {
		t.Fatal("no trace events emitted")
	}
	if !reflect.DeepEqual(a, b) {
		max := len(a)
		if len(b) < max {
			max = len(b)
		}
		for i := 0; i < max; i++ {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("traces diverge at event %d:\n run1: %+v\n run2: %+v", i, a[i], b[i])
			}
		}
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
}

func TestScheduleOnceForcesExactlyOneRestart(t *testing.T) {
	// Kill both replicas of sphere 1 at t=0 on attempt 0 only: the job
	// fails once, restarts, and completes cleanly on attempt 1.
	cfg := obsConfig(nil)
	cfg.MaxRestarts = 3
	cfg.ScheduleOnce = true
	cfg.ComputeDelay = 2 * time.Millisecond
	cfg.FailureSchedule = []failure.Kill{{Rank: 2}, {Rank: 3}}
	res, err := Run(cfg, cgFactory(t, 6, 30))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Restarts != 1 {
		t.Fatalf("completed=%v restarts=%d, want completed after exactly 1 restart",
			res.Completed, res.Restarts)
	}
	m := res.Metrics
	if got := m.Counter("runner_restarts_total"); got != 1 {
		t.Errorf("runner_restarts_total = %d, want 1", got)
	}
	if got := m.Counter("runner_job_failures_total"); got != 1 {
		t.Errorf("runner_job_failures_total = %d, want 1", got)
	}
	if got := m.Counter("failure_kills_total"); got != 2 {
		t.Errorf("failure_kills_total = %d, want 2", got)
	}
	if got := m.Counter("failure_sphere_exhausted_total"); got != 1 {
		t.Errorf("failure_sphere_exhausted_total = %d, want 1", got)
	}
}

func TestCorruptRanksSurfaceMismatches(t *testing.T) {
	// Corrupt the second replica of sphere 2: receivers out-vote it on
	// every delivery, so mismatches are detected without wrong results.
	cfg := obsConfig(nil)
	cfg.CorruptRanks = []int{5} // sphere(2) = {4, 5} at 4 ranks, 2x
	res, err := Run(cfg, cgFactory(t, 6, 30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Counter("redundancy_mismatches_total") == 0 {
		t.Error("corrupt replica produced no recorded mismatches")
	}
	if res.Redundancy.Mismatches == 0 {
		t.Error("Result.Redundancy missed the mismatches")
	}
}
