package core

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/checkpoint"
	"repro/internal/failure"
	"repro/internal/redundancy"
)

// cgFactory builds a small deterministic CG job.
func cgFactory(t *testing.T, grid, iters int) func() apps.App {
	t.Helper()
	m, err := apps.Laplacian2D(grid)
	if err != nil {
		t.Fatal(err)
	}
	return func() apps.App {
		return &apps.CG{Matrix: m, Iterations: iters}
	}
}

func cgChecksum(t *testing.T, res Result) float64 {
	t.Helper()
	if len(res.CompletedApps) == 0 {
		t.Fatal("no completed apps")
	}
	app, ok := res.CompletedApps[0].(*apps.CG)
	if !ok {
		t.Fatalf("unexpected app type %T", res.CompletedApps[0])
	}
	return app.Checksum
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Ranks: 0, Degree: 1},
		{Ranks: 2, Degree: 0.5},
		{Ranks: 2, Degree: 1, StepInterval: -1},
		{Ranks: 2, Degree: 1, MaxRestarts: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, func() apps.App { return &apps.TaskFarm{Tasks: 1} }); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Run(Config{Ranks: 2, Degree: 1}, nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestFailureFreeRunAllDegrees(t *testing.T) {
	factory := cgFactory(t, 6, 30)
	var base float64
	for _, degree := range []float64{1, 1.5, 2, 2.5, 3} {
		res, err := Run(Config{
			Ranks:          4,
			Degree:         degree,
			AttemptTimeout: time.Minute,
		}, factory)
		if err != nil {
			t.Fatalf("degree %v: %v", degree, err)
		}
		if !res.Completed || res.Restarts != 0 || res.TotalFailures != 0 {
			t.Fatalf("degree %v: %+v", degree, res)
		}
		sum := cgChecksum(t, res)
		if degree == 1 {
			base = sum
		} else if sum != base {
			t.Fatalf("degree %v checksum %v != 1x %v", degree, sum, base)
		}
		// N_total per Eq. 8.
		part := mustPartition(t, 4, degree)
		if res.PhysicalRanks != part {
			t.Fatalf("degree %v physical ranks %d, want %d", degree, res.PhysicalRanks, part)
		}
	}
}

func mustPartition(t *testing.T, n int, degree float64) int {
	t.Helper()
	m, err := redundancy.NewRankMap(n, degree)
	if err != nil {
		t.Fatal(err)
	}
	return m.PhysicalSize()
}

func TestReplicaDeathToleratedWithoutRestart(t *testing.T) {
	// Kill one replica of virtual rank 1 early: with 2x redundancy the
	// job must complete on the first attempt with zero restarts.
	m, err := redundancy.NewRankMap(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sphere1, err := m.Sphere(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Ranks:  4,
		Degree: 2,
		FailureSchedule: []failure.Kill{
			{Rank: sphere1[0], After: time.Millisecond},
		},
		MaxRestarts:    3,
		AttemptTimeout: time.Minute,
	}, cgFactory(t, 6, 200))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("not completed: %+v", res)
	}
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d, want 0 (replica death is not job failure)", res.Restarts)
	}
	if res.TotalFailures != 1 {
		t.Fatalf("failures = %d, want 1", res.TotalFailures)
	}
}

func TestSphereDeathTriggersRestartFromCheckpoint(t *testing.T) {
	// At 1x, any failure kills the job. Checkpoint every 20 steps, kill
	// rank 1 after the job has had time to checkpoint, and verify it
	// restarts, restores, and still produces the correct answer.
	store := checkpoint.NewMemStorage()
	res, err := Run(Config{
		Ranks:        4,
		Degree:       1,
		Storage:      store,
		StepInterval: 20,
		FailureSchedule: []failure.Kill{
			// ≈3 checkpoints land before the kill; ≈40% of the work
			// remains after it, so the run cannot finish first.
			{Rank: 1, After: 250 * time.Millisecond},
		},
		MaxRestarts:    3,
		AttemptTimeout: time.Minute,
		ComputeDelay:   3 * time.Millisecond, // stretch the run past the kill
	}, cgFactory(t, 6, 150))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("not completed: %+v", res)
	}
	if res.Restarts == 0 {
		t.Fatal("expected at least one restart")
	}
	if !res.Attempts[len(res.Attempts)-1].Restored {
		t.Fatal("final attempt did not restore from checkpoint")
	}
	// The answer survives the crash-restart cycle.
	clean, err := Run(Config{Ranks: 4, Degree: 1, AttemptTimeout: time.Minute},
		cgFactory(t, 6, 150))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cgChecksum(t, res), cgChecksum(t, clean); got != want {
		t.Fatalf("checksum after restart %v, want %v", got, want)
	}
}

func TestRestartsExhausted(t *testing.T) {
	// Kill rank 0 instantly on every attempt with no redundancy: the run
	// must give up after MaxRestarts+1 attempts.
	res, err := Run(Config{
		Ranks:  2,
		Degree: 1,
		FailureSchedule: []failure.Kill{
			{Rank: 0, After: 0},
		},
		MaxRestarts:    2,
		AttemptTimeout: time.Minute,
		ComputeDelay:   5 * time.Millisecond,
	}, cgFactory(t, 5, 500))
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Fatalf("err = %v, want ErrRestartsExhausted", err)
	}
	if len(res.Attempts) != 3 {
		t.Fatalf("attempts = %d, want 3", len(res.Attempts))
	}
	for _, at := range res.Attempts {
		if !at.JobFailed {
			t.Fatalf("attempt %d not marked failed: %+v", at.Index, at)
		}
	}
}

func TestDualRedundancySurvivesWhatKills1x(t *testing.T) {
	// The same failure schedule (kill physical rank 1 early) aborts a 1x
	// job but leaves a 2x job untouched — the paper's core claim at
	// miniature scale. At 2x, physical rank 1 is a replica of virtual 0.
	schedule := []failure.Kill{{Rank: 1, After: 10 * time.Millisecond}}
	factory := cgFactory(t, 6, 300)

	res1x, err := Run(Config{
		Ranks:           2,
		Degree:          1,
		FailureSchedule: schedule,
		MaxRestarts:     0,
		AttemptTimeout:  time.Minute,
		ComputeDelay:    time.Millisecond,
	}, factory)
	if !errors.Is(err, ErrRestartsExhausted) {
		t.Fatalf("1x should die with no restart budget, err = %v", err)
	}
	if res1x.Completed {
		t.Fatal("1x completed despite fatal failure")
	}

	res2x, err := Run(Config{
		Ranks:           2,
		Degree:          2,
		FailureSchedule: schedule,
		MaxRestarts:     0,
		AttemptTimeout:  time.Minute,
		ComputeDelay:    time.Millisecond,
	}, factory)
	if err != nil {
		t.Fatalf("2x: %v", err)
	}
	if !res2x.Completed || res2x.Restarts != 0 {
		t.Fatalf("2x result %+v", res2x)
	}
}

func TestPoissonInjectionRuns(t *testing.T) {
	// Random injection with a generous MTBF and ample redundancy: the job
	// completes (possibly with restarts) and counts failures.
	store := checkpoint.NewMemStorage()
	res, err := Run(Config{
		Ranks:          4,
		Degree:         3,
		Storage:        store,
		StepInterval:   10,
		NodeMTBF:       5 * time.Second,
		Seed:           42,
		MaxRestarts:    10,
		AttemptTimeout: time.Minute,
		ComputeDelay:   time.Millisecond,
	}, cgFactory(t, 6, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("not completed: %+v", res)
	}
}

func TestCheckpointsHappen(t *testing.T) {
	res, err := Run(Config{
		Ranks:          3,
		Degree:         2,
		StepInterval:   10,
		AttemptTimeout: time.Minute,
	}, cgFactory(t, 6, 35))
	if err != nil {
		t.Fatal(err)
	}
	// 35 iterations at interval 10 → checkpoints at 10, 20, 30.
	if res.TotalCheckpoints != 3 {
		t.Fatalf("checkpoints = %d, want 3", res.TotalCheckpoints)
	}
}

func TestRedundancyStatsAggregated(t *testing.T) {
	res, err := Run(Config{
		Ranks:          2,
		Degree:         2,
		AttemptTimeout: time.Minute,
	}, cgFactory(t, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Redundancy.PhysicalSends == 0 || res.Redundancy.Deliveries == 0 {
		t.Fatalf("stats %+v", res.Redundancy)
	}
	if res.Redundancy.Mismatches != 0 {
		t.Fatalf("clean run recorded mismatches: %+v", res.Redundancy)
	}
}

func TestTaskFarmUnderRunner(t *testing.T) {
	// Wildcard-receive workload end to end through the runner.
	res, err := Run(Config{
		Ranks:          4,
		Degree:         2,
		AttemptTimeout: time.Minute,
	}, func() apps.App { return &apps.TaskFarm{Tasks: 30} })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
	var want int64
	for task := 0; task < 30; task++ {
		v := int64(task)
		want += v*v%9973 + v
	}
	for _, a := range res.CompletedApps {
		if got := a.(*apps.TaskFarm).Total; got != want {
			t.Fatalf("total %d, want %d", got, want)
		}
	}
}

func TestStencilUnderRunnerWithFailure(t *testing.T) {
	store := checkpoint.NewMemStorage()
	factory := func() apps.App {
		return &apps.Stencil{Width: 8, Height: 12, Iterations: 60, HotBoundary: 10}
	}
	clean, err := Run(Config{Ranks: 3, Degree: 1, AttemptTimeout: time.Minute}, factory)
	if err != nil {
		t.Fatal(err)
	}
	wantHeat := clean.CompletedApps[0].(*apps.Stencil).Heat

	res, err := Run(Config{
		Ranks:        3,
		Degree:       1,
		Storage:      store,
		StepInterval: 15,
		FailureSchedule: []failure.Kill{
			{Rank: 2, After: 150 * time.Millisecond},
		},
		MaxRestarts:    3,
		AttemptTimeout: time.Minute,
		ComputeDelay:   5 * time.Millisecond,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Restarts == 0 {
		t.Fatalf("%+v", res)
	}
	if got := res.CompletedApps[0].(*apps.Stencil).Heat; got != wantHeat {
		t.Fatalf("heat %v, want %v", got, wantHeat)
	}
}

func TestSendDelayDilatesRuntimeWithDegree(t *testing.T) {
	// Eq. 1 made physical: with per-message latency, the failure-free
	// runtime grows with the redundancy degree (Table 5's phenomenon).
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	factory := func() apps.App { return &apps.Stencil{Width: 6, Height: 8, Iterations: 30, HotBoundary: 1} }
	elapsed := map[float64]time.Duration{}
	for _, degree := range []float64{1, 3} {
		res, err := Run(Config{
			Ranks:          4,
			Degree:         degree,
			SendDelay:      200 * time.Microsecond,
			AttemptTimeout: time.Minute,
		}, factory)
		if err != nil {
			t.Fatalf("degree %v: %v", degree, err)
		}
		elapsed[degree] = res.Elapsed
	}
	if elapsed[3] <= elapsed[1] {
		t.Fatalf("runtime did not dilate with redundancy: 1x=%v 3x=%v",
			elapsed[1], elapsed[3])
	}
}

func TestAttemptTimeout(t *testing.T) {
	// An app that blocks forever must be reaped by the watchdog.
	res, err := Run(Config{
		Ranks:          2,
		Degree:         1,
		AttemptTimeout: 100 * time.Millisecond,
	}, func() apps.App { return blockingApp{} })
	if !errors.Is(err, ErrAttemptTimeout) {
		t.Fatalf("err = %v, want ErrAttemptTimeout", err)
	}
	if res.Completed {
		t.Fatal("completed?")
	}
}

// blockingApp waits for a message that never comes.
type blockingApp struct{}

func (blockingApp) Name() string { return "blocker" }

func (blockingApp) Run(ctx *apps.Context) error {
	if ctx.Comm.Rank() == 0 {
		_, err := ctx.Comm.Recv(1, 99)
		return err
	}
	_, err := ctx.Comm.Recv(0, 99)
	return err
}

func TestAppErrorIsFatal(t *testing.T) {
	boom := fmt.Errorf("genuine bug")
	_, err := Run(Config{
		Ranks:          2,
		Degree:         2,
		AttemptTimeout: time.Minute,
	}, func() apps.App { return errorApp{err: boom} })
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped app error", err)
	}
}

type errorApp struct{ err error }

func (errorApp) Name() string              { return "error" }
func (e errorApp) Run(*apps.Context) error { return e.err }

func TestNodeHoursAccounting(t *testing.T) {
	res, err := Run(Config{
		Ranks:          4,
		Degree:         2.5,
		AttemptTimeout: time.Minute,
	}, cgFactory(t, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	// 4 ranks at 2.5x → 10 physical (Eq. 8 with even split 2/2 → 2·2+2·3).
	if res.PhysicalRanks != 10 {
		t.Fatalf("physical ranks %d, want 10", res.PhysicalRanks)
	}
	if math.IsNaN(res.Elapsed.Seconds()) || res.Elapsed <= 0 {
		t.Fatalf("elapsed %v", res.Elapsed)
	}
}
