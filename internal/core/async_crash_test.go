package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/checkpoint"
)

// slowSpyStore wraps MemStorage with a configurable write latency and a
// log of commits and restore-reads, so tests can pin down exactly which
// generation was committed when the failure hit and which one the
// restart restored from.
type slowSpyStore struct {
	inner      *checkpoint.MemStorage
	writeDelay time.Duration

	mu           sync.Mutex
	commits      []uint64
	restoreReads []uint64
}

func newSlowSpyStore(writeDelay time.Duration) *slowSpyStore {
	return &slowSpyStore{inner: checkpoint.NewMemStorage(), writeDelay: writeDelay}
}

func (s *slowSpyStore) Write(gen uint64, rank int, state []byte) error {
	time.Sleep(s.writeDelay)
	return s.inner.Write(gen, rank, state)
}

func (s *slowSpyStore) Commit(gen uint64, n int) error {
	err := s.inner.Commit(gen, n)
	if err == nil {
		s.mu.Lock()
		if len(s.commits) == 0 || s.commits[len(s.commits)-1] != gen {
			s.commits = append(s.commits, gen)
		}
		s.mu.Unlock()
	}
	return err
}

func (s *slowSpyStore) Latest() (uint64, int, bool, error) { return s.inner.Latest() }

func (s *slowSpyStore) Read(gen uint64, rank int) ([]byte, error) {
	s.mu.Lock()
	s.restoreReads = append(s.restoreReads, gen)
	s.mu.Unlock()
	return s.inner.Read(gen, rank)
}

func (s *slowSpyStore) Drop(gen uint64) error { return s.inner.Drop(gen) }

// TestAsyncCrashDuringInFlightWriteRestoresPreviousGeneration is the
// crash-consistency acceptance test for the async pipeline: a rank is
// fail-stopped while the background write for generation g is still in
// flight (the write takes 150ms, the kill lands two near-instant steps
// after the checkpoint that enqueued it). The restart must restore
// generation g−1 — the last one a drain point committed — and the job
// must still converge to the clean answer. Run under -race, this also
// exercises the snapshot-buffer and worker/metric handoffs while a
// world is being torn down around them.
func TestAsyncCrashDuringInFlightWriteRestoresPreviousGeneration(t *testing.T) {
	factory := cgFactory(t, 6, 12)
	clean, err := Run(Config{Ranks: 2, Degree: 1, AttemptTimeout: time.Minute}, factory)
	if err != nil {
		t.Fatal(err)
	}
	want := cgChecksum(t, clean)

	spy := newSlowSpyStore(150 * time.Millisecond)
	// Checkpoints at steps 3, 6, 9, 12 → generations 0..3. The kill at
	// step 8 lands while generation 1 (enqueued at step 6) is still
	// being written; only generation 0 has passed a drain point.
	res, err := Run(Config{
		Ranks:           2,
		Degree:          1,
		Storage:         spy,
		StepInterval:    3,
		AsyncCheckpoint: true,
		AsyncWorkers:    2,
		StepKills:       []StepKill{{Step: 8, Rank: 0}},
		MaxRestarts:     2,
		AttemptTimeout:  time.Minute,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want exactly 1 (degree 1: the kill is a job failure)", res.Restarts)
	}
	if len(res.Attempts) != 2 || !res.Attempts[1].Restored {
		t.Fatalf("attempt 1 did not restore from a checkpoint: %+v", res.Attempts)
	}
	if got := cgChecksum(t, res); got != want {
		t.Fatalf("checksum after crash-restart = %v, want %v", got, want)
	}

	spy.mu.Lock()
	commits := append([]uint64(nil), spy.commits...)
	reads := append([]uint64(nil), spy.restoreReads...)
	spy.mu.Unlock()
	// The restart must have read generation 0 — generation 1 was in
	// flight, never committed, and therefore invisible.
	if len(reads) == 0 {
		t.Fatal("no restore reads recorded")
	}
	for _, g := range reads {
		if g != 0 {
			t.Fatalf("restore read generation %d, want 0 (gen 1 was uncommitted at the crash)", g)
		}
	}
	// Commit order: gen 0 (at the step-6 drain point, before the kill),
	// then gen 1, 2 and the final drain's gen 3 from the second attempt.
	if len(commits) == 0 || commits[0] != 0 {
		t.Fatalf("commit log %v: first committed generation must be 0", commits)
	}
	if commits[len(commits)-1] != 3 {
		t.Fatalf("commit log %v: final drain must commit generation 3", commits)
	}
	// The overlap actually happened: at least one drain point found the
	// previous generation's write still in flight.
	if got := counterValue(t, res.Metrics, "checkpoint_drain_waits_total"); got == 0 {
		t.Error("checkpoint_drain_waits_total = 0: no drain ever overlapped an in-flight write")
	}
	if got := counterValue(t, res.Metrics, "checkpoint_overlap_ns_total"); got == 0 {
		t.Error("checkpoint_overlap_ns_total = 0: background workers recorded no write time")
	}
}

// TestAsyncCompletesAndMatchesSyncChecksum: the pipelined path must be
// semantically invisible — same answer, same checkpoint count, and the
// metrics ledger drains to zero in flight.
func TestAsyncCompletesAndMatchesSyncChecksum(t *testing.T) {
	factory := cgFactory(t, 6, 20)
	sync_, err := Run(Config{
		Ranks: 2, Degree: 1, StepInterval: 4, AttemptTimeout: time.Minute,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	async, err := Run(Config{
		Ranks: 2, Degree: 1, StepInterval: 4, AsyncCheckpoint: true,
		AttemptTimeout: time.Minute,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := cgChecksum(t, sync_), cgChecksum(t, async); a != b {
		t.Fatalf("async checksum %v != sync checksum %v", b, a)
	}
	if sync_.TotalCheckpoints != async.TotalCheckpoints {
		t.Fatalf("checkpoints sync=%d async=%d", sync_.TotalCheckpoints, async.TotalCheckpoints)
	}
	snap := async.Metrics
	if got := snap.Gauge("checkpoint_async_inflight"); got != 0 {
		t.Errorf("checkpoint_async_inflight = %d at job end, want 0", got)
	}
	att := counterValue(t, snap, "checkpoint_attempted_total")
	com := counterValue(t, snap, "checkpoint_committed_total")
	if att == 0 || att != com {
		t.Errorf("attempted/committed = %d/%d: end-of-run drain must commit everything", att, com)
	}
}

// TestAsyncUnderRedundancyCompletes: all replicas run the collective
// drain protocol; degree 2 exercises the writer/non-writer split.
func TestAsyncUnderRedundancyCompletes(t *testing.T) {
	factory := cgFactory(t, 6, 12)
	want := cleanChecksum(t, factory)
	res, err := Run(Config{
		Ranks: 4, Degree: 2, StepInterval: 4, AsyncCheckpoint: true,
		AttemptTimeout: time.Minute,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if got := cgChecksum(t, res); got != want {
		t.Fatalf("checksum = %v, want %v", got, want)
	}
}

func TestAsyncConfigValidation(t *testing.T) {
	factory := func() apps.App { return &apps.TaskFarm{Tasks: 1} }
	// Async + peer tier is a supported combination since the erasure PR:
	// peer replication rides the physical transport on reserved tags, so
	// background sends never touch the bookmark counts.
	if err := (Config{
		Ranks: 2, Degree: 2, StepInterval: 5, PeerReplicas: 1, AsyncCheckpoint: true,
	}).Validate(); err != nil {
		t.Fatalf("AsyncCheckpoint+PeerReplicas rejected: %v", err)
	}
	if err := (Config{
		Ranks: 2, Degree: 2, StepInterval: 5, AsyncCheckpoint: true,
		PeerDataShards: 2, PeerParityShards: 1,
	}).Validate(); err != nil {
		t.Fatalf("AsyncCheckpoint+erasure peer tier rejected: %v", err)
	}
	if _, err := Run(Config{
		Ranks: 2, Degree: 1, StepInterval: 5, AsyncCheckpoint: true, AsyncWorkers: -1,
	}, factory); err == nil {
		t.Fatal("negative AsyncWorkers accepted")
	}
}
