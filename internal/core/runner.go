// Package core is the combined partial-redundancy + checkpoint/restart
// runtime — the paper's primary contribution assembled into a runnable
// system. A Runner launches an application at a chosen redundancy degree
// over the simmpi substrate, schedules coordinated checkpoints at the
// configured interval, injects Poisson node failures, detects job failure
// when a whole replica sphere dies (Fig. 7), and restarts from the last
// committed checkpoint until the application completes.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/checkpoint"
	"repro/internal/failure"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/redundancy"
	"repro/internal/simmpi"
	"repro/internal/stats"
)

// RecoveryPolicy selects what the runner does when a whole replica
// sphere dies (job failure, Fig. 7).
type RecoveryPolicy string

const (
	// RecoverRestart is the paper's baseline: tear the world down and
	// restart from the last committed checkpoint. The zero value.
	RecoverRestart RecoveryPolicy = "restart"
	// RecoverShrink is ULFM-style shrink-and-continue: the application
	// observes the failure through the communicator's errhandler,
	// acknowledges it, agrees with the survivors, and continues on a
	// shrunk communicator — no restart, no checkpoint restore. The
	// application must be written against the fault-notification API
	// (taskfarm and stencil are); checkpointing is disabled because
	// nothing ever rolls back.
	RecoverShrink RecoveryPolicy = "shrink"
)

// Config describes one job: the application scale, redundancy degree,
// checkpoint schedule, failure environment, and emulation knobs.
type Config struct {
	// Ranks is N, the virtual (application-visible) process count.
	Ranks int
	// Degree is the redundancy degree r ≥ 1 (2 = dual, 1.5 = every other
	// rank replicated, ...).
	Degree float64
	// Mode selects the replica-comparison mode; zero means All-to-all.
	Mode redundancy.Mode

	// Storage holds checkpoints across restarts. Nil means a fresh
	// in-memory store (sufficient for one Run call).
	Storage checkpoint.Storage
	// StepInterval checkpoints every StepInterval application steps;
	// zero disables checkpointing.
	StepInterval int
	// SkipBookmark disables the quiescence verification.
	SkipBookmark bool
	// AsyncCheckpoint moves compression and storage writes off the
	// checkpoint line onto a background worker pool: ranks snapshot
	// into pooled buffers inside the coordinated region and return to
	// compute while the write drains; the generation commits at the
	// next checkpoint (or the end-of-run drain). Effective δ — the
	// stall the application observes — shrinks to the snapshot copy
	// plus coordination. Composes with the peer tier: peer replication
	// rides the physical transport on reserved tags, invisible to the
	// bookmark quiescence counts, so background sends cannot corrupt
	// them.
	AsyncCheckpoint bool
	// AsyncWorkers sizes the background write pool; zero means
	// GOMAXPROCS. Only meaningful with AsyncCheckpoint.
	AsyncWorkers int

	// PeerReplicas, when positive, layers an in-memory peer-replicated
	// checkpoint tier over Storage: each rank's snapshot is additionally
	// held by PeerReplicas buddy ranks in other replica spheres, and
	// Storage becomes the slow tier written only every StableEvery-th
	// generation. Zero keeps the original Storage-only behaviour.
	// Mutually exclusive with PeerDataShards (pick full copies or
	// erasure coding, not both).
	PeerReplicas int
	// PeerDataShards, when positive, enables the erasure-coded peer
	// tier instead of full copies: each snapshot is Reed-Solomon
	// encoded into PeerDataShards data + PeerParityShards parity
	// shards spread across replica spheres, so a snapshot of size S
	// costs ~S·(k+m)/k resident bytes instead of S·(replicas+1), and
	// any PeerParityShards sphere losses remain recoverable. Requires
	// PeerDataShards >= 2 and PeerParityShards >= 1, and
	// PeerDataShards+PeerParityShards <= number of spheres.
	PeerDataShards int
	// PeerParityShards is the parity shard count for the erasure-coded
	// peer tier; meaningful only with PeerDataShards.
	PeerParityShards int
	// PeerBudgetBytes caps the peer tier's resident bytes per rank;
	// when the cap is exceeded the store evicts whole oldest
	// generations (never the one being written) and counts them in
	// peer_store_evictions_total. Zero means unlimited.
	PeerBudgetBytes int64
	// StableEvery writes only every StableEvery-th checkpoint generation
	// to Storage when the peer tier is enabled (the cadence differential
	// is where partial restart wins). Zero or one means every generation.
	StableEvery int
	// PartialRestart enables sphere-local recovery: when a sphere dies
	// but the peer tier still holds a usable generation, the dead ranks
	// are revived in place and the job resumes from the peer generation
	// instead of tearing the world down for a full coordinated restart.
	// Requires a peer tier (PeerReplicas or PeerDataShards) and
	// StepInterval > 0.
	PartialRestart bool
	// PartialRestartLimit bounds in-place recoveries per attempt before
	// falling back to full restarts; zero means 3.
	PartialRestartLimit int

	// RecoveryPolicy selects the response to a sphere death: restart
	// from checkpoint (the default) or ULFM-style shrink-and-continue.
	// The shrink policy is incompatible with checkpointing, the peer
	// tier, partial restart, and a restart budget — survivors never roll
	// back, so none of that machinery may be configured.
	RecoveryPolicy RecoveryPolicy

	// NodeMTBF enables Poisson failure injection with the given per-node
	// MTBF (scaled down to test scale); zero disables injection.
	NodeMTBF time.Duration
	// FailureSchedule, when non-nil, injects exactly these kills per
	// attempt instead of random ones.
	FailureSchedule []failure.Kill
	// ScheduleOnce applies FailureSchedule to the first attempt only, so
	// a deterministic kill list can force exactly one restart cycle
	// (golden metrics jobs, worked EXPERIMENTS examples).
	ScheduleOnce bool
	// StepKills injects failures pinned to application steps rather than
	// wall-clock offsets; each entry fires at most once per Run, the
	// first time any writer replica reports reaching the step. This is
	// the deterministic chaos schedule the recovery tests rely on.
	StepKills []StepKill
	// Seed drives the failure draws (each attempt splits a fresh child
	// stream, so attempts see independent failure patterns).
	Seed int64
	// MaxRestarts bounds restart attempts; the run fails with
	// ErrRestartsExhausted beyond it. Zero means no restarts allowed.
	MaxRestarts int
	// AttemptTimeout aborts a wedged attempt; zero means 2 minutes.
	AttemptTimeout time.Duration
	// RestartDelay emulates the paper's restart overhead R as a pause
	// between attempts (optional).
	RestartDelay time.Duration

	// SendDelay emulates per-physical-message wire latency.
	SendDelay time.Duration
	// ComputeDelay emulates per-step computation time.
	ComputeDelay time.Duration

	// CorruptRanks lists physical ranks whose replicas inject silent
	// data corruption into every message payload they send (exercises
	// the mismatch/vote counters; see mpi.WithCorruptRanks).
	CorruptRanks []int

	// Obs, when non-nil, is the job-level telemetry registry; the run
	// creates a private one otherwise, so Result.Metrics is always
	// populated. Communication counters (simmpi_*, redundancy_*) cover
	// the completed attempt — aborted attempts tear down mid-flight, so
	// their in-transit counts are not meaningful totals — while
	// checkpoint_*, failure_*, and runner_* counters are cumulative
	// across attempts.
	Obs *obs.Registry
	// Tracer, when non-nil, receives structured events from the runner,
	// the checkpoint protocol, and the failure injector. Nil (the
	// default) is the no-op tracer.
	Tracer *obs.Tracer
	// Recorder, when non-nil, is the bounded flight recorder threaded
	// through every layer: the transport (sends, drops, liveness), the
	// failure injector (kills, sphere exhaustion), the checkpoint tier
	// (restore, drain, peer-fetch spans), and the runner's own recovery
	// spans. Nil (the default) disables flight recording entirely.
	Recorder *obs.Recorder
	// RankView, when non-nil, is called once per attempt with the fresh
	// world's liveness view — the hook the introspection server's
	// /ranks endpoint uses to track the current attempt.
	RankView func(obs.RankView)

	// Transport, when non-nil, builds each attempt's message-passing
	// backend (every physical rank must be addressable in-process, so
	// the per-rank driver goroutines can run against it). Nil means the
	// simulated backend, simmpi.NewWorld. The multi-process backend has
	// its own attempt loop (procmpi) because its ranks live in child
	// processes rather than goroutines.
	Transport func(physical int, opts ...mpi.Option) (mpi.Transport, error)
}

// PeerTier reports whether any peer checkpoint tier is configured —
// full copies (PeerReplicas) or erasure-coded (PeerDataShards).
func (cfg Config) PeerTier() bool {
	return cfg.PeerReplicas > 0 || cfg.PeerDataShards > 0
}

// Validate checks the configuration.
func (cfg Config) Validate() error {
	switch {
	case cfg.Ranks <= 0:
		return fmt.Errorf("core: Ranks = %d", cfg.Ranks)
	case cfg.Degree < 1:
		return fmt.Errorf("core: Degree = %v", cfg.Degree)
	case cfg.StepInterval < 0:
		return fmt.Errorf("core: StepInterval = %d", cfg.StepInterval)
	case cfg.MaxRestarts < 0:
		return fmt.Errorf("core: MaxRestarts = %d", cfg.MaxRestarts)
	case cfg.PeerReplicas < 0:
		return fmt.Errorf("core: PeerReplicas = %d", cfg.PeerReplicas)
	case cfg.PeerDataShards < 0:
		return fmt.Errorf("core: PeerDataShards = %d", cfg.PeerDataShards)
	case cfg.PeerParityShards < 0:
		return fmt.Errorf("core: PeerParityShards = %d", cfg.PeerParityShards)
	case cfg.PeerBudgetBytes < 0:
		return fmt.Errorf("core: PeerBudgetBytes = %d", cfg.PeerBudgetBytes)
	case cfg.PeerReplicas > 0 && cfg.PeerDataShards > 0:
		return fmt.Errorf("core: PeerReplicas and PeerDataShards are mutually exclusive " +
			"(full-copy and erasure-coded peer tiers cannot be combined)")
	case cfg.PeerDataShards == 1:
		return fmt.Errorf("core: PeerDataShards = 1 (erasure coding needs >= 2 data shards; " +
			"use PeerReplicas for full copies)")
	case cfg.PeerDataShards > 0 && cfg.PeerParityShards == 0:
		return fmt.Errorf("core: PeerDataShards = %d requires PeerParityShards > 0", cfg.PeerDataShards)
	case cfg.PeerParityShards > 0 && cfg.PeerDataShards == 0:
		return fmt.Errorf("core: PeerParityShards = %d requires PeerDataShards > 0", cfg.PeerParityShards)
	case cfg.PeerBudgetBytes > 0 && !cfg.PeerTier():
		return fmt.Errorf("core: PeerBudgetBytes requires a peer tier " +
			"(PeerReplicas or PeerDataShards)")
	case cfg.StableEvery < 0:
		return fmt.Errorf("core: StableEvery = %d", cfg.StableEvery)
	case cfg.StableEvery > 1 && !cfg.PeerTier():
		return fmt.Errorf("core: StableEvery = %d requires a peer tier "+
			"(PeerReplicas or PeerDataShards)", cfg.StableEvery)
	case cfg.PartialRestart && !cfg.PeerTier():
		return fmt.Errorf("core: PartialRestart requires a peer tier " +
			"(PeerReplicas or PeerDataShards)")
	case cfg.PartialRestart && cfg.StepInterval == 0:
		return fmt.Errorf("core: PartialRestart requires StepInterval > 0")
	case cfg.AsyncWorkers < 0:
		return fmt.Errorf("core: AsyncWorkers = %d", cfg.AsyncWorkers)
	case cfg.RecoveryPolicy != "" && cfg.RecoveryPolicy != RecoverRestart &&
		cfg.RecoveryPolicy != RecoverShrink:
		return fmt.Errorf("core: unknown RecoveryPolicy %q", cfg.RecoveryPolicy)
	case cfg.RecoveryPolicy == RecoverShrink && cfg.PartialRestart:
		return fmt.Errorf("core: shrink recovery is incompatible with PartialRestart")
	case cfg.RecoveryPolicy == RecoverShrink && cfg.PeerTier():
		return fmt.Errorf("core: shrink recovery is incompatible with a peer tier")
	case cfg.RecoveryPolicy == RecoverShrink && cfg.StepInterval > 0:
		return fmt.Errorf("core: shrink recovery never restores, so StepInterval " +
			"(checkpointing) must be 0")
	case cfg.RecoveryPolicy == RecoverShrink && cfg.MaxRestarts > 0:
		return fmt.Errorf("core: shrink recovery never restarts, so MaxRestarts must be 0")
	}
	for _, k := range cfg.StepKills {
		if k.Step <= 0 || k.Rank < 0 {
			return fmt.Errorf("core: bad StepKill {Step: %d, Rank: %d}", k.Step, k.Rank)
		}
	}
	return nil
}

// ErrRestartsExhausted reports that the job kept failing past the restart
// budget.
var ErrRestartsExhausted = errors.New("core: restart budget exhausted")

// ErrAttemptTimeout reports that an attempt made no progress within the
// timeout and was aborted.
var ErrAttemptTimeout = errors.New("core: attempt timed out")

// Attempt records one job attempt.
type Attempt struct {
	// Index is the attempt number, starting at 0.
	Index int
	// Failures is how many physical ranks the injector killed.
	Failures int
	// JobFailed reports whether a whole sphere died.
	JobFailed bool
	// TimedOut reports whether the watchdog aborted the attempt.
	TimedOut bool
	// Elapsed is the attempt's wallclock duration.
	Elapsed time.Duration
	// Checkpoints completed during this attempt.
	Checkpoints int
	// Restored reports whether the attempt started from a checkpoint.
	Restored bool
	// PartialRestarts counts the sphere-local in-place recoveries this
	// attempt performed instead of tearing the world down.
	PartialRestarts int
	// ShrinkEpisodes counts the sphere deaths the attempt survived by
	// shrinking instead of restarting (RecoverShrink only).
	ShrinkEpisodes int
	// Kills lists the physical ranks the injector killed this attempt,
	// in injection order (nil without failure injection).
	Kills []failure.Kill
}

// Result summarises a completed (or abandoned) Run.
type Result struct {
	// Completed reports whether the application finished.
	Completed bool
	// Restarts is the number of restarts performed (attempts - 1).
	Restarts int
	// TotalFailures across all attempts.
	TotalFailures int
	// TotalCheckpoints across all attempts.
	TotalCheckpoints int
	// Elapsed is the total wallclock including restarts.
	Elapsed time.Duration
	// Attempts holds per-attempt details.
	Attempts []Attempt
	// PhysicalRanks is N_total, the node count the job occupied.
	PhysicalRanks int
	// Redundancy aggregates the interposition layer's counters over the
	// final attempt.
	Redundancy redundancy.Stats
	// PartialRestarts is the total number of sphere-local in-place
	// recoveries across all attempts.
	PartialRestarts int
	// ShrinkEpisodes is the number of sphere deaths survived by
	// shrink-and-continue (RecoverShrink only).
	ShrinkEpisodes int
	// RecomputedSteps counts application steps executed at or below a
	// virtual rank's previous high-water mark — the paper's rework term,
	// observed directly. Covers both full and partial restarts.
	RecomputedSteps int64
	// CompletedApps holds, for the successful attempt, one application
	// instance per replica goroutine that finished cleanly (for result
	// inspection, e.g. the CG checksum).
	CompletedApps []apps.App
	// Metrics is the job-level telemetry snapshot (see Config.Obs for
	// which counters are per-final-attempt vs cumulative).
	Metrics obs.Snapshot
}

// runnerMetrics bundles the runner's own job-level instruments.
type runnerMetrics struct {
	attempts    *obs.Counter
	restarts    *obs.Counter
	jobFailures *obs.Counter
	timeouts    *obs.Counter
	completions *obs.Counter
	recomputeMS *obs.Counter
	attemptMS   *obs.Histogram
}

func newRunnerMetrics(reg *obs.Registry) runnerMetrics {
	return runnerMetrics{
		attempts:    reg.Counter("runner_attempts_total"),
		restarts:    reg.Counter("runner_restarts_total"),
		jobFailures: reg.Counter("runner_job_failures_total"),
		timeouts:    reg.Counter("runner_timeouts_total"),
		completions: reg.Counter("runner_completions_total"),
		recomputeMS: reg.Counter("runner_recompute_ms_total"),
		attemptMS:   reg.Histogram("runner_attempt_ms", obs.MillisBuckets),
	}
}

// foldRedundancy projects the final attempt's interposition counters into
// the job registry.
func foldRedundancy(reg *obs.Registry, s redundancy.Stats) {
	reg.Counter("redundancy_virtual_sends_total").Add(s.VirtualSends)
	reg.Counter("redundancy_physical_sends_total").Add(s.PhysicalSends)
	reg.Counter("redundancy_deliveries_total").Add(s.Deliveries)
	reg.Counter("redundancy_votes_total").Add(s.Votes)
	reg.Counter("redundancy_mismatches_total").Add(s.Mismatches)
	reg.Counter("redundancy_corrections_total").Add(s.Corrections)
	reg.Counter("redundancy_envelopes_total").Add(s.EnvelopesSent)
	reg.Counter("redundancy_failovers_total").Add(s.Failovers)
}

// Run executes the application factory under the configured combined
// C/R + redundancy regime until completion or until the restart budget
// is exhausted. factory is invoked once per physical replica per attempt
// and must return a fresh deterministic application value.
func Run(cfg Config, factory func() apps.App) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if factory == nil {
		return Result{}, fmt.Errorf("core: nil application factory")
	}
	if cfg.RecoveryPolicy == RecoverShrink {
		return runShrink(cfg, factory)
	}
	rankMap, err := redundancy.NewRankMap(cfg.Ranks, cfg.Degree)
	if err != nil {
		return Result{}, err
	}
	store := cfg.Storage
	if store == nil {
		store = checkpoint.NewMemStorage()
	}
	timeout := cfg.AttemptTimeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	stream := stats.NewStream(cfg.Seed)

	jobReg := cfg.Obs
	if jobReg == nil {
		jobReg = obs.NewRegistry()
	}
	rm := newRunnerMetrics(jobReg)
	// One pipeline spans the whole Run: its workers survive restart
	// attempts (abandoned jobs from a killed attempt drain harmlessly —
	// their generations are never committed, and a rewrite by the next
	// attempt produces identical bytes from the deterministic app).
	var pipe *checkpoint.Pipeline
	if cfg.AsyncCheckpoint && cfg.StepInterval > 0 {
		pipe = checkpoint.NewPipeline(cfg.AsyncWorkers)
		defer pipe.Close()
	}
	// Step accounting spans the whole Run: the high-water marks survive
	// restarts so that recomputation after a full restart counts too.
	acct := newStepAccounting(rankMap.VirtualSize(), cfg.StepKills, jobReg, cfg.Recorder)

	res := Result{PhysicalRanks: rankMap.PhysicalSize()}
	start := time.Now()
	for attempt := 0; attempt <= cfg.MaxRestarts; attempt++ {
		if attempt > 0 && cfg.RestartDelay > 0 {
			time.Sleep(cfg.RestartDelay)
		}
		rm.attempts.Inc()
		if attempt > 0 {
			rm.restarts.Inc()
		}
		cfg.Tracer.Emit("attempt_start", -1, -1, attempt, nil)
		attemptSpan := cfg.Recorder.StartSpan("attempt", -1, -1, attempt)
		at, apps, redStats, worldSnap, appErr := runAttempt(
			cfg, rankMap, store, pipe, stream.Split(), timeout, attempt, jobReg, acct, factory)
		attemptSpan.End()
		at.Index = attempt
		res.Attempts = append(res.Attempts, at)
		res.TotalFailures += at.Failures
		res.TotalCheckpoints += at.Checkpoints
		res.PartialRestarts += at.PartialRestarts
		res.Restarts = attempt
		res.Redundancy = redStats
		rm.attemptMS.Observe(float64(at.Elapsed.Milliseconds()))
		if at.JobFailed {
			rm.jobFailures.Inc()
		}
		if at.TimedOut {
			rm.timeouts.Inc()
		}
		cfg.Tracer.Emit("attempt_end", -1, -1, attempt, map[string]any{
			"job_failed":  at.JobFailed,
			"timed_out":   at.TimedOut,
			"failures":    at.Failures,
			"checkpoints": at.Checkpoints,
			"restored":    at.Restored,
		})

		succeeded := appErr == nil && !at.JobFailed && !at.TimedOut
		if succeeded {
			// Communication counters come from the completed attempt only;
			// an aborted world tears down mid-flight and its in-transit
			// counts are not meaningful totals.
			jobReg.Merge(worldSnap)
			foldRedundancy(jobReg, redStats)
		} else {
			// Work lost to the failure: it must be recomputed (the paper's
			// rework term).
			rm.recomputeMS.Add(uint64(at.Elapsed.Milliseconds()))
		}

		switch {
		case succeeded:
			res.Completed = true
			rm.completions.Inc()
			cfg.Tracer.Emit("run_end", -1, -1, attempt, map[string]any{
				"completed": true, "restarts": attempt,
			})
			res.Elapsed = time.Since(start)
			res.CompletedApps = apps
			res.RecomputedSteps = acct.recomputed.Value()
			res.Metrics = jobReg.Snapshot()
			return res, nil
		case at.TimedOut:
			res.Elapsed = time.Since(start)
			res.RecomputedSteps = acct.recomputed.Value()
			res.Metrics = jobReg.Snapshot()
			return res, fmt.Errorf("attempt %d: %w", attempt, ErrAttemptTimeout)
		case appErr != nil && !at.JobFailed:
			// A genuine application error, not failure-induced.
			res.Elapsed = time.Since(start)
			res.RecomputedSteps = acct.recomputed.Value()
			res.Metrics = jobReg.Snapshot()
			return res, fmt.Errorf("attempt %d: %w", attempt, appErr)
		}
		// Job failure: loop for a restart.
	}
	cfg.Tracer.Emit("run_end", -1, -1, cfg.MaxRestarts, map[string]any{
		"completed": false, "restarts": cfg.MaxRestarts,
	})
	res.Elapsed = time.Since(start)
	res.RecomputedSteps = acct.recomputed.Value()
	res.Metrics = jobReg.Snapshot()
	return res, fmt.Errorf("%w after %d attempts", ErrRestartsExhausted, cfg.MaxRestarts+1)
}

// runAttempt executes one job attempt: fresh world, fresh injector,
// restore-from-checkpoint inside the application. Per-rank driver
// goroutines run the app in epochs under a partialGate, whose supervisor
// either recovers sphere deaths in place (peer tier usable) or aborts
// the world for a full restart exactly like the original watchdog. The
// returned Snapshot holds the attempt world's communication counters;
// the caller decides whether to merge them into the job registry.
func runAttempt(cfg Config, rankMap *redundancy.RankMap, store checkpoint.Storage,
	pipe *checkpoint.Pipeline, stream *stats.Stream, timeout time.Duration,
	attempt int, jobReg *obs.Registry, acct *stepAccounting, factory func() apps.App,
) (Attempt, []apps.App, redundancy.Stats, obs.Snapshot, error) {
	var at Attempt
	begin := time.Now()

	attemptReg := obs.NewRegistry()
	worldOpts := []mpi.Option{mpi.WithObs(attemptReg)}
	if cfg.SendDelay > 0 {
		worldOpts = append(worldOpts, mpi.WithSendDelay(cfg.SendDelay))
	}
	if cfg.Recorder != nil {
		worldOpts = append(worldOpts, mpi.WithFlight(cfg.Recorder))
	}
	newTransport := cfg.Transport
	if newTransport == nil {
		newTransport = func(n int, opts ...mpi.Option) (mpi.Transport, error) {
			return simmpi.NewWorld(n, opts...)
		}
	}
	world, err := newTransport(rankMap.PhysicalSize(), worldOpts...)
	if err != nil {
		return at, nil, redundancy.Stats{}, obs.Snapshot{}, err
	}
	if cfg.RankView != nil {
		cfg.RankView(world)
	}

	spheres := make([][]int, rankMap.VirtualSize())
	for v := range spheres {
		sphere, serr := rankMap.Sphere(v)
		if serr != nil {
			return at, nil, redundancy.Stats{}, obs.Snapshot{}, serr
		}
		spheres[v] = sphere
	}

	schedule := cfg.FailureSchedule
	if cfg.ScheduleOnce && attempt > 0 {
		schedule = nil
	}
	var inj *failure.Injector
	if schedule != nil || cfg.NodeMTBF > 0 || len(cfg.StepKills) > 0 {
		if schedule == nil && cfg.NodeMTBF <= 0 {
			// Step-triggered kills only: an empty schedule makes the
			// injector a pure InjectNow conduit.
			schedule = []failure.Kill{}
		}
		inj, err = failure.New(world, spheres, failure.Config{
			Stream:   stream,
			NodeMTBF: cfg.NodeMTBF,
			Schedule: schedule,
			Obs:      jobReg,
			Trace:    cfg.Tracer,
			Flight:   cfg.Recorder,
		})
		if err != nil {
			return at, nil, redundancy.Stats{}, obs.Snapshot{}, err
		}
	}

	// A fresh peer store per attempt: a full restart means the fast tier
	// died with the job, so Latest falls through to the stable tier.
	var peer *checkpoint.PeerStore
	if cfg.PeerTier() {
		stableEvery := cfg.StableEvery
		if stableEvery <= 0 {
			stableEvery = 1
		}
		peer, err = checkpoint.NewPeerStore(checkpoint.PeerStoreConfig{
			Spheres:      spheres,
			Replicas:     cfg.PeerReplicas,
			DataShards:   cfg.PeerDataShards,
			ParityShards: cfg.PeerParityShards,
			BudgetBytes:  cfg.PeerBudgetBytes,
			StableEvery:  stableEvery,
			Slow:         store,
			Live:         world,
			Obs:          jobReg,
			Trace:        cfg.Tracer,
			Flight:       cfg.Recorder,
		})
		if err != nil {
			return at, nil, redundancy.Stats{}, obs.Snapshot{}, err
		}
	}

	g := newPartialGate(cfg, world, rankMap, spheres, store, peer, pipe, inj, jobReg, acct, factory)
	g.startServers()
	if inj != nil {
		inj.Start()
	}
	g.spawnAll()
	jobFailed, timedOut := g.supervise(timeout)

	// Tear down the peer servers: on a clean finish the world is still
	// up, so interrupt it to unblock their receives (no-op when aborted,
	// where the servers have already drained).
	if peer != nil {
		world.Interrupt()
		g.serverWG.Wait()
	}

	if inj != nil {
		inj.Stop()
		at.Failures = inj.Failures()
		at.Kills = inj.Log()
	}

	g.mu.Lock()
	fetchAborted := g.fetchAborted
	maxCheckpoints := g.maxCheckpoints
	restored := g.restored
	partialRestarts := g.partialRestarts
	redStats := g.redStats
	g.mu.Unlock()

	// A sphere may have died exactly as the app finished; count it only
	// if the world was actually torn down.
	at.JobFailed = (jobFailed || fetchAborted) && world.Aborted()
	at.TimedOut = timedOut
	at.Elapsed = time.Since(begin)
	at.Checkpoints = maxCheckpoints
	at.Restored = restored
	at.PartialRestarts = partialRestarts

	// Failure-induced checkpoint errors (a writer died mid-protocol) are
	// job failures, not application bugs.
	appErr := g.firstAppError()
	if appErr != nil && at.Failures > 0 && isCheckpointCasualty(appErr) {
		at.JobFailed = true
		appErr = nil
	}
	return at, g.completedApps(), redStats, attemptReg.Snapshot(), appErr
}

// isCheckpointCasualty reports whether the error is a checkpoint-protocol
// casualty of a concurrent failure rather than an application bug.
func isCheckpointCasualty(err error) bool {
	return errors.Is(err, checkpoint.ErrIncomplete) ||
		errors.Is(err, checkpoint.ErrNotQuiescent) ||
		errors.Is(err, redundancy.ErrSphereDead)
}

func addStats(total *redundancy.Stats, s redundancy.Stats) {
	total.VirtualSends += s.VirtualSends
	total.PhysicalSends += s.PhysicalSends
	total.Deliveries += s.Deliveries
	total.Votes += s.Votes
	total.Mismatches += s.Mismatches
	total.Corrections += s.Corrections
	total.EnvelopesSent += s.EnvelopesSent
	total.Failovers += s.Failovers
}
