package core

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/failure"
)

func TestAttemptKillLogExposed(t *testing.T) {
	m, err := apps.Laplacian2D(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Ranks:  3,
		Degree: 2,
		FailureSchedule: []failure.Kill{
			{Rank: 1, After: 5 * time.Millisecond},
			{Rank: 4, After: 10 * time.Millisecond},
		},
		MaxRestarts:    2,
		AttemptTimeout: time.Minute,
		ComputeDelay:   time.Millisecond,
	}, func() apps.App { return &apps.CG{Matrix: m, Iterations: 60} })
	if err != nil {
		t.Fatal(err)
	}
	at := res.Attempts[0]
	if len(at.Kills) != at.Failures {
		t.Fatalf("kill log has %d entries, Failures says %d", len(at.Kills), at.Failures)
	}
	if len(at.Kills) == 0 {
		t.Fatal("no kills recorded")
	}
	ranksSeen := map[int]bool{}
	for _, k := range at.Kills {
		ranksSeen[k.Rank] = true
	}
	if !ranksSeen[1] {
		t.Fatalf("scheduled kill of rank 1 missing from log: %+v", at.Kills)
	}
}

func TestAttemptKillLogEmptyWithoutInjection(t *testing.T) {
	m, err := apps.Laplacian2D(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Ranks:          2,
		Degree:         1,
		AttemptTimeout: time.Minute,
	}, func() apps.App { return &apps.CG{Matrix: m, Iterations: 10} })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attempts[0].Kills) != 0 {
		t.Fatalf("kills recorded without injection: %v", res.Attempts[0].Kills)
	}
}

func TestEigenThroughRunner(t *testing.T) {
	m, err := apps.Laplacian2D(5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Ranks:          2,
		Degree:         2,
		StepInterval:   3,
		AttemptTimeout: time.Minute,
	}, func() apps.App {
		return &apps.Eigen{Matrix: m, OuterIterations: 8, InnerIterations: 50}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
	want := res.CompletedApps[0].(*apps.Eigen).Eigenvalue
	for _, a := range res.CompletedApps[1:] {
		if got := a.(*apps.Eigen).Eigenvalue; got != want {
			t.Fatalf("replica eigenvalue %v != %v", got, want)
		}
	}
	if want <= 0 || want > 4 {
		t.Fatalf("λ_min = %v outside the Laplacian's spectrum floor", want)
	}
}
