package core

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/obs"
)

// expectedFarmTotal mirrors the task farm's work function.
func expectedFarmTotal(tasks int) int64 {
	var total int64
	for t := 0; t < tasks; t++ {
		v := int64(t)
		total += v*v%9973 + v
	}
	return total
}

// TestShrinkTaskFarmSurvivesKill kills a worker mid-farm and requires
// the job to complete by shrinking — no restart, no restore, and the
// exact aggregate despite the requeued in-flight task.
func TestShrinkTaskFarmSurvivesKill(t *testing.T) {
	t.Parallel()
	const tasks = 40
	reg := obs.NewRegistry()
	res, err := Run(Config{
		Ranks:          6,
		Degree:         1,
		RecoveryPolicy: RecoverShrink,
		StepKills:      []StepKill{{Step: 5, Rank: 3}},
		AttemptTimeout: 30 * time.Second,
		Obs:            reg,
	}, func() apps.App { return &apps.TaskFarm{Tasks: tasks} })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if res.Restarts != 0 {
		t.Fatalf("Restarts = %d, want 0", res.Restarts)
	}
	if res.ShrinkEpisodes == 0 {
		t.Fatal("no shrink episodes recorded for a sphere-killing failure")
	}
	if res.TotalFailures == 0 {
		t.Fatal("the step kill never fired")
	}
	want := expectedFarmTotal(tasks)
	if len(res.CompletedApps) == 0 {
		t.Fatal("no completed apps")
	}
	for _, app := range res.CompletedApps {
		tf := app.(*apps.TaskFarm)
		if tf.Total != want {
			t.Fatalf("Total = %d, want %d", tf.Total, want)
		}
	}
	snap := res.Metrics
	if got := snap.Counter("shrink_episodes_total"); got == 0 {
		t.Fatal("shrink_episodes_total = 0")
	}
	if got := snap.Counter("checkpoint_restores_total"); got != 0 {
		t.Fatalf("checkpoint_restores_total = %d, want 0", got)
	}
	if got := snap.Counter("runner_restarts_total"); got != 0 {
		t.Fatalf("runner_restarts_total = %d, want 0", got)
	}
}

// TestShrinkStencilSurvivesKill kills an interior rank mid-stencil; the
// survivors must re-decompose the grid and run the remaining iterations
// to completion with a finite heat sum.
func TestShrinkStencilSurvivesKill(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{
		Ranks:          4,
		Degree:         1,
		RecoveryPolicy: RecoverShrink,
		StepKills:      []StepKill{{Step: 6, Rank: 2}},
		AttemptTimeout: 30 * time.Second,
	}, func() apps.App {
		return &apps.Stencil{Width: 14, Height: 14, Iterations: 25, HotBoundary: 1}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if res.ShrinkEpisodes == 0 {
		t.Fatal("no shrink episodes recorded")
	}
	if len(res.CompletedApps) == 0 {
		t.Fatal("no completed apps")
	}
	heat := res.CompletedApps[0].(*apps.Stencil).Heat
	if heat <= 0 {
		t.Fatalf("Heat = %v, want > 0", heat)
	}
	for _, app := range res.CompletedApps {
		if h := app.(*apps.Stencil).Heat; h != heat {
			t.Fatalf("survivors disagree on heat: %v vs %v", h, heat)
		}
	}
}

// TestShrinkRedundantFarmSurvivesSphereKill runs the farm at degree 2
// and kills both replicas of a worker's sphere: the first death is
// masked by redundancy, the second exhausts the sphere, and the job
// must shrink the virtual world and still complete exactly.
func TestShrinkRedundantFarmSurvivesSphereKill(t *testing.T) {
	t.Parallel()
	const tasks = 30
	res, err := Run(Config{
		Ranks:          3,
		Degree:         2,
		RecoveryPolicy: RecoverShrink,
		StepKills:      []StepKill{{Step: 3, Rank: 2}, {Step: 6, Rank: 3}},
		AttemptTimeout: 30 * time.Second,
	}, func() apps.App { return &apps.TaskFarm{Tasks: tasks} })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if res.ShrinkEpisodes == 0 {
		t.Fatal("sphere exhaustion was not recorded as a shrink episode")
	}
	want := expectedFarmTotal(tasks)
	for _, app := range res.CompletedApps {
		if tf := app.(*apps.TaskFarm); tf.Total != want {
			t.Fatalf("Total = %d, want %d", tf.Total, want)
		}
	}
}

// TestShrinkStencilNoFailure pins the no-failure case: under the shrink
// policy with nothing killed, the stencil must produce the same heat as
// the restart-policy run (the policies differ only under failure).
func TestShrinkStencilNoFailure(t *testing.T) {
	t.Parallel()
	factory := func() apps.App {
		return &apps.Stencil{Width: 10, Height: 10, Iterations: 12, HotBoundary: 2}
	}
	base, err := Run(Config{Ranks: 3, Degree: 1, AttemptTimeout: 30 * time.Second}, factory)
	if err != nil {
		t.Fatalf("restart-policy run: %v", err)
	}
	shr, err := Run(Config{
		Ranks: 3, Degree: 1,
		RecoveryPolicy: RecoverShrink,
		AttemptTimeout: 30 * time.Second,
	}, factory)
	if err != nil {
		t.Fatalf("shrink-policy run: %v", err)
	}
	bh := base.CompletedApps[0].(*apps.Stencil).Heat
	sh := shr.CompletedApps[0].(*apps.Stencil).Heat
	if bh != sh {
		t.Fatalf("no-failure heat differs: restart %v, shrink %v", bh, sh)
	}
	if shr.ShrinkEpisodes != 0 {
		t.Fatalf("ShrinkEpisodes = %d without failures", shr.ShrinkEpisodes)
	}
}

// TestShrinkValidate pins the configuration rules: the shrink policy
// excludes every piece of rollback machinery.
func TestShrinkValidate(t *testing.T) {
	t.Parallel()
	bad := []Config{
		{Ranks: 4, Degree: 1, RecoveryPolicy: "rewind"},
		{Ranks: 4, Degree: 1, RecoveryPolicy: RecoverShrink, StepInterval: 3},
		{Ranks: 4, Degree: 1, RecoveryPolicy: RecoverShrink, MaxRestarts: 2},
		{Ranks: 4, Degree: 1, RecoveryPolicy: RecoverShrink, PeerReplicas: 1},
		{Ranks: 4, Degree: 1, RecoveryPolicy: RecoverShrink,
			PartialRestart: true, PeerReplicas: 1, StepInterval: 2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated, want error", i)
		}
	}
	ok := Config{Ranks: 4, Degree: 1, RecoveryPolicy: RecoverShrink}
	if err := ok.Validate(); err != nil {
		t.Errorf("minimal shrink config rejected: %v", err)
	}
	legacy := Config{Ranks: 4, Degree: 1, RecoveryPolicy: RecoverRestart, MaxRestarts: 3}
	if err := legacy.Validate(); err != nil {
		t.Errorf("explicit restart policy rejected: %v", err)
	}
}
