package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/failure"
)

// TestShrinkStressBackToBackEpisodes sweeps the step at which two
// consecutive sphere exhaustions land, so the second failure arrives
// while the farm is still absorbing the first repair — the window the
// wildcard failure-notification protocol (leader envelopes, follower
// pinning) must serialize identically on every replica. Run with -race:
// the value of this test is the scheduler interleavings it explores,
// not any single pass.
func TestShrinkStressBackToBackEpisodes(t *testing.T) {
	const tasks = 30
	want := expectedFarmTotal(tasks)
	for s := 2; s <= 7; s++ {
		s := s
		t.Run(fmt.Sprintf("deg1_step%d", s), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{
				Ranks:          6,
				Degree:         1,
				RecoveryPolicy: RecoverShrink,
				StepKills:      []StepKill{{Step: s, Rank: 3}, {Step: s + 1, Rank: 4}},
				AttemptTimeout: 2 * time.Minute,
			}, func() apps.App { return &apps.TaskFarm{Tasks: tasks} })
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.Completed {
				t.Fatal("job did not complete")
			}
			if res.ShrinkEpisodes != 2 {
				t.Fatalf("ShrinkEpisodes = %d, want 2", res.ShrinkEpisodes)
			}
			for _, app := range res.CompletedApps {
				if tf := app.(*apps.TaskFarm); tf.Total != want {
					t.Fatalf("Total = %d, want %d", tf.Total, want)
				}
			}
		})
		t.Run(fmt.Sprintf("deg2_step%d", s), func(t *testing.T) {
			t.Parallel()
			// Two worker spheres exhausted on overlapping schedules: the
			// second sphere's first replica dies at the same step that
			// exhausts the first sphere.
			res, err := Run(Config{
				Ranks:          4,
				Degree:         2,
				RecoveryPolicy: RecoverShrink,
				StepKills: []StepKill{
					{Step: s, Rank: 2}, {Step: s + 1, Rank: 3},
					{Step: s + 1, Rank: 4}, {Step: s + 2, Rank: 5},
				},
				AttemptTimeout: 2 * time.Minute,
			}, func() apps.App { return &apps.TaskFarm{Tasks: tasks} })
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.Completed {
				t.Fatal("job did not complete")
			}
			if res.ShrinkEpisodes != 2 {
				t.Fatalf("ShrinkEpisodes = %d, want 2", res.ShrinkEpisodes)
			}
			for _, app := range res.CompletedApps {
				if tf := app.(*apps.TaskFarm); tf.Total != want {
					t.Fatalf("Total = %d, want %d", tf.Total, want)
				}
			}
		})
	}
}

// TestShrinkStressTimedKills fires wall-clock-scheduled kills instead of
// step-triggered ones, so the deaths land at arbitrary points of the
// protocol — including inside a Shrink collective or between a failure
// envelope and its acknowledgement. The job must complete with the
// exact aggregate no matter where the kills strike (a kill landing
// after the farm drained simply produces no episode).
func TestShrinkStressTimedKills(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	const tasks = 30
	want := expectedFarmTotal(tasks)
	for i := 0; i <= 5; i++ {
		d := time.Duration(i) * 2 * time.Millisecond
		t.Run(fmt.Sprintf("after%v", d), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Config{
				Ranks:          6,
				Degree:         1,
				RecoveryPolicy: RecoverShrink,
				FailureSchedule: []failure.Kill{
					{Rank: 2, After: d},
					{Rank: 4, After: d + time.Millisecond},
				},
				ComputeDelay:   500 * time.Microsecond,
				AttemptTimeout: 2 * time.Minute,
			}, func() apps.App { return &apps.TaskFarm{Tasks: tasks} })
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.Completed {
				t.Fatal("job did not complete")
			}
			for _, app := range res.CompletedApps {
				if tf := app.(*apps.TaskFarm); tf.Total != want {
					t.Fatalf("Total = %d, want %d", tf.Total, want)
				}
			}
		})
	}
}
