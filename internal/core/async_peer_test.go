package core

import (
	"testing"
	"time"
)

// Async checkpointing composed with the peer tier: the pipeline workers
// execute the peer store's encode + shard fan-out in the background, the
// commit-lags-one protocol defers the peer commit to the next drain
// point, and recovery promotes the newest fully-stashed generation so a
// sphere death costs no more rollback than the synchronous tier.

// erasureConfig is peerConfig's erasure-coded twin: the same CG fixture
// and kill schedule, with the four replica spheres holding k=2 data +
// m=1 parity Reed-Solomon shards instead of full buddy copies.
func erasureConfig(partial bool) Config {
	cfg := peerConfig(partial)
	cfg.PeerReplicas = 0
	cfg.PeerDataShards = 2
	cfg.PeerParityShards = 1
	return cfg
}

// TestAsyncPeerPartialRestartMatchesSync is the acceptance test for the
// async+peer composition: on the deterministic kill schedule of the
// partial-restart PR (sphere of virtual rank 2 dies at step 38), the
// async full-copy tier must absorb the death in place and recompute
// exactly as many steps as the synchronous tier — the pipeline flush +
// promote at recovery reclaims the commit-lags-one window, so async
// costs no extra rollback.
func TestAsyncPeerPartialRestartMatchesSync(t *testing.T) {
	factory := cgFactory(t, 6, 60)
	want := cleanChecksum(t, factory)

	syncRes, err := Run(peerConfig(true), factory)
	if err != nil {
		t.Fatalf("sync run: %v", err)
	}
	asyncCfg := peerConfig(true)
	asyncCfg.AsyncCheckpoint = true
	asyncRes, err := Run(asyncCfg, factory)
	if err != nil {
		t.Fatalf("async run: %v", err)
	}

	for name, res := range map[string]Result{"sync": syncRes, "async": asyncRes} {
		if !res.Completed {
			t.Fatalf("%s run did not complete", name)
		}
		if got := cgChecksum(t, res); got != want {
			t.Fatalf("%s run checksum = %v, want %v", name, got, want)
		}
		if res.Restarts != 0 || res.PartialRestarts != 1 {
			t.Fatalf("%s run: Restarts = %d, PartialRestarts = %d; want 0, 1",
				name, res.Restarts, res.PartialRestarts)
		}
	}
	if asyncRes.RecomputedSteps != syncRes.RecomputedSteps {
		t.Fatalf("async recomputed %d steps, sync %d; the commit-lags-one window must not cost a generation",
			asyncRes.RecomputedSteps, syncRes.RecomputedSteps)
	}
	t.Logf("recomputed steps: sync=%d async=%d", syncRes.RecomputedSteps, asyncRes.RecomputedSteps)
}

// TestErasurePartialRestartRecoversInPlace runs the partial-restart
// recovery scenario on the erasure-coded tier, sync and async: the dead
// sphere's state is reconstructed from surviving shards instead of a
// full buddy copy, and the job converges to the clean answer either way.
func TestErasurePartialRestartRecoversInPlace(t *testing.T) {
	factory := cgFactory(t, 6, 60)
	want := cleanChecksum(t, factory)

	for _, async := range []bool{false, true} {
		name := map[bool]string{false: "sync", true: "async"}[async]
		cfg := erasureConfig(true)
		cfg.AsyncCheckpoint = async
		res, err := Run(cfg, factory)
		if err != nil {
			t.Fatalf("%s erasure run: %v", name, err)
		}
		if !res.Completed {
			t.Fatalf("%s erasure run did not complete", name)
		}
		if got := cgChecksum(t, res); got != want {
			t.Fatalf("%s erasure checksum = %v, want %v", name, got, want)
		}
		if res.Restarts != 0 || res.PartialRestarts != 1 {
			t.Fatalf("%s erasure run: Restarts = %d, PartialRestarts = %d; want 0, 1",
				name, res.Restarts, res.PartialRestarts)
		}
		if got := counterValue(t, res.Metrics, "peerstore_replicas_total"); got == 0 {
			t.Errorf("%s erasure run: no shard fan-out recorded", name)
		}
		if got := counterValue(t, res.Metrics, "peer_fetch_remote_total"); got == 0 {
			t.Errorf("%s erasure run: revived ranks never fetched shards from peers", name)
		}
	}
}

// TestAsyncCrashDuringInFlightPeerSend mirrors the async crash test on
// the peer tier: the kill lands one step after a checkpoint, while the
// background workers may still be encoding and pushing shard frames for
// the enqueued generation. The recovery path must flush the pipeline,
// discard the settle debt owed by frames addressed to the dead ranks,
// and restore a consistent generation. Run under -race this exercises
// the worker/serve/teardown handoffs of the pooled wire path.
func TestAsyncCrashDuringInFlightPeerSend(t *testing.T) {
	factory := cgFactory(t, 6, 40)
	want := cleanChecksum(t, factory)

	cfg := Config{
		Ranks:               4,
		Degree:              2,
		StepInterval:        3,
		PeerDataShards:      2,
		PeerParityShards:    1,
		StableEvery:         4,
		PartialRestart:      true,
		PartialRestartLimit: 2,
		AsyncCheckpoint:     true,
		AsyncWorkers:        2,
		// Checkpoint at step 6 enqueues background writes; the sphere of
		// virtual rank 1 dies at step 7, racing the in-flight shard sends.
		StepKills:      []StepKill{{Step: 7, Rank: 2}, {Step: 7, Rank: 3}},
		MaxRestarts:    2,
		AttemptTimeout: time.Minute,
		ComputeDelay:   200 * time.Microsecond,
	}
	res, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if got := cgChecksum(t, res); got != want {
		t.Fatalf("checksum = %v, want %v", got, want)
	}
	if res.TotalFailures != 2 {
		t.Fatalf("TotalFailures = %d, want 2", res.TotalFailures)
	}
	// The death must be absorbed — in place when the promoted generation
	// survives, or by one full restart when the crash raced the very
	// first stable write; either way the answer above already matched.
	if res.PartialRestarts == 0 && res.Restarts == 0 {
		t.Fatal("the kill was absorbed by neither a partial nor a full restart")
	}
}
