// The shrink-and-continue runner: the ULFM-style alternative to the
// restart loop. One attempt, no checkpoint clients, no peer tier, no
// revival — every physical rank runs the application exactly once, and
// when a replica sphere dies the *application* repairs the job on the
// survivors through the fault-notification Comm API (errhandler →
// FailureAck → Agree → Shrink). The runner's supervisor only observes:
// it records each sphere death as a shrink episode and keeps waiting
// for the survivors to finish.

package core

import (
	"time"

	"repro/internal/apps"
	"repro/internal/failure"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/redundancy"
	"repro/internal/simmpi"
	"repro/internal/stats"
)

// runShrink executes cfg under RecoverShrink. Success means every rank
// that was still alive at the end returned nil from the application;
// ranks killed by the injector are excused casualties.
func runShrink(cfg Config, factory func() apps.App) (Result, error) {
	rankMap, err := redundancy.NewRankMap(cfg.Ranks, cfg.Degree)
	if err != nil {
		return Result{}, err
	}
	timeout := cfg.AttemptTimeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	stream := stats.NewStream(cfg.Seed)

	jobReg := cfg.Obs
	if jobReg == nil {
		jobReg = obs.NewRegistry()
	}
	rm := newRunnerMetrics(jobReg)
	episodesC := jobReg.Counter("shrink_episodes_total")
	acct := newStepAccounting(rankMap.VirtualSize(), cfg.StepKills, jobReg, cfg.Recorder)

	res := Result{PhysicalRanks: rankMap.PhysicalSize()}
	start := time.Now()
	rm.attempts.Inc()
	cfg.Tracer.Emit("attempt_start", -1, -1, 0, nil)
	attemptSpan := cfg.Recorder.StartSpan("attempt", -1, -1, 0)

	attemptReg := obs.NewRegistry()
	worldOpts := []mpi.Option{mpi.WithObs(attemptReg)}
	if cfg.SendDelay > 0 {
		worldOpts = append(worldOpts, mpi.WithSendDelay(cfg.SendDelay))
	}
	if cfg.Recorder != nil {
		worldOpts = append(worldOpts, mpi.WithFlight(cfg.Recorder))
	}
	newTransport := cfg.Transport
	if newTransport == nil {
		newTransport = func(n int, opts ...mpi.Option) (mpi.Transport, error) {
			return simmpi.NewWorld(n, opts...)
		}
	}
	world, err := newTransport(rankMap.PhysicalSize(), worldOpts...)
	if err != nil {
		return res, err
	}
	if cfg.RankView != nil {
		cfg.RankView(world)
	}

	spheres := make([][]int, rankMap.VirtualSize())
	for v := range spheres {
		sphere, serr := rankMap.Sphere(v)
		if serr != nil {
			return res, serr
		}
		spheres[v] = sphere
	}

	var inj *failure.Injector
	schedule := cfg.FailureSchedule
	if schedule != nil || cfg.NodeMTBF > 0 || len(cfg.StepKills) > 0 {
		if schedule == nil && cfg.NodeMTBF <= 0 {
			schedule = []failure.Kill{}
		}
		inj, err = failure.New(world, spheres, failure.Config{
			Stream:   stream,
			NodeMTBF: cfg.NodeMTBF,
			Schedule: schedule,
			Obs:      jobReg,
			Trace:    cfg.Tracer,
			Flight:   cfg.Recorder,
		})
		if err != nil {
			return res, err
		}
	}

	commOpts := []mpi.Option{
		mpi.WithDegree(cfg.Degree),
		mpi.WithHashCompare(cfg.Mode == redundancy.MsgPlusHash),
		mpi.WithLiveness(world),
		mpi.WithCorruptRanks(cfg.CorruptRanks),
	}

	type driverDone struct {
		phys  int
		app   apps.App
		stats redundancy.Stats
		err   error
	}
	doneCh := make(chan driverDone, world.Size())
	for p := 0; p < world.Size(); p++ {
		go func(p int) {
			app, st, derr := runShrinkDriver(cfg, world, rankMap, spheres, acct, inj, commOpts, p, factory)
			doneCh <- driverDone{phys: p, app: app, stats: st, err: derr}
		}(p)
	}
	if inj != nil {
		inj.Start()
	}

	var failedCh <-chan int
	if inj != nil {
		failedCh = inj.JobFailed()
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()

	var at Attempt
	var redStats redundancy.Stats
	completedBy := make(map[int]apps.App)
	appErrs := make(map[int]error)
	episodes := 0
	noteEpisode := func(v int) {
		episodes++
		episodesC.Inc()
		sp := cfg.Recorder.StartSpan("shrink", -1, v, episodes)
		sp.End()
		cfg.Tracer.Emit("shrink_episode", -1, v, episodes, nil)
	}
	for remaining := world.Size(); remaining > 0; {
		select {
		case d := <-doneCh:
			remaining--
			addStats(&redStats, d.stats)
			switch {
			case d.err == nil:
				completedBy[d.phys] = d.app
			case !world.Alive(d.phys) || world.Aborted():
				// Expected casualty of the kill (or of the timeout abort).
			default:
				appErrs[d.phys] = d.err
			}
		case v := <-failedCh:
			noteEpisode(v)
		case <-timer.C:
			at.TimedOut = true
			world.Abort()
		}
	}
	// A sphere exhaustion can land exactly as the last driver drains.
	if failedCh != nil {
		select {
		case v := <-failedCh:
			noteEpisode(v)
		default:
		}
	}
	if inj != nil {
		inj.Stop()
		at.Failures = inj.Failures()
		at.Kills = inj.Log()
	}
	attemptSpan.End()

	at.Elapsed = time.Since(start)
	at.ShrinkEpisodes = episodes
	res.Attempts = append(res.Attempts, at)
	res.TotalFailures = at.Failures
	res.Redundancy = redStats
	res.ShrinkEpisodes = episodes
	rm.attemptMS.Observe(float64(at.Elapsed.Milliseconds()))
	if at.TimedOut {
		rm.timeouts.Inc()
	}

	var appErr error
	for p := 0; p < world.Size(); p++ {
		if e, ok := appErrs[p]; ok {
			appErr = RankError{Rank: p, Err: e}
			break
		}
	}
	succeeded := appErr == nil && !at.TimedOut
	cfg.Tracer.Emit("attempt_end", -1, -1, 0, map[string]any{
		"job_failed":      !succeeded && !at.TimedOut,
		"timed_out":       at.TimedOut,
		"failures":        at.Failures,
		"shrink_episodes": episodes,
	})
	if succeeded {
		jobReg.Merge(attemptReg.Snapshot())
		foldRedundancy(jobReg, redStats)
		res.Completed = true
		rm.completions.Inc()
		cfg.Tracer.Emit("run_end", -1, -1, 0, map[string]any{
			"completed": true, "restarts": 0, "shrink_episodes": episodes,
		})
		for p := 0; p < world.Size(); p++ {
			if app, ok := completedBy[p]; ok {
				res.CompletedApps = append(res.CompletedApps, app)
			}
		}
	} else {
		// The lost attempt's work would have to be recomputed under a
		// restart policy; under shrink a failed attempt is simply lost.
		rm.recomputeMS.Add(uint64(at.Elapsed.Milliseconds()))
		rm.jobFailures.Inc()
		res.Attempts[0].JobFailed = !at.TimedOut
	}
	res.Elapsed = time.Since(start)
	res.RecomputedSteps = acct.recomputed.Value()
	res.Metrics = jobReg.Snapshot()
	switch {
	case succeeded:
		return res, nil
	case at.TimedOut:
		return res, ErrAttemptTimeout
	default:
		return res, appErr
	}
}

// runShrinkDriver runs one physical rank's single application execution
// against the fault-notification API: no checkpoint client, no epochs.
func runShrinkDriver(cfg Config, world mpi.Transport, rankMap *redundancy.RankMap,
	spheres [][]int, acct *stepAccounting, inj *failure.Injector,
	commOpts []mpi.Option, p int, factory func() apps.App,
) (apps.App, redundancy.Stats, error) {
	pc, err := world.Endpoint(p)
	if err != nil {
		return nil, redundancy.Stats{}, err
	}
	rc, err := redundancy.Wrap(pc, rankMap, commOpts...)
	if err != nil {
		return nil, redundancy.Stats{}, err
	}
	myPhys := pc.Rank()
	v := rc.Rank()
	sphere := spheres[v]
	ctx := &apps.Context{
		Comm: rc,
		IsWriter: func() bool {
			for _, q := range sphere {
				if world.Alive(q) {
					return q == myPhys
				}
			}
			return false
		},
		ComputeDelay: cfg.ComputeDelay,
		NoteStep: func(step int) {
			acct.note(v, step)
			acct.maybeFire(step, inj)
		},
		ShrinkRecovery: true,
	}
	app := factory()
	runErr := app.Run(ctx)
	return app, rc.Stats(), runErr
}
