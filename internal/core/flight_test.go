package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
)

// flightSpan is a paired B/E interval reconstructed from the recorder.
type flightSpan struct {
	kind   string
	rank   int
	sphere int
	step   int
	nanos  int64 // E.Nanos - B.Nanos (mono dumps)
}

// pairFlightSpans mirrors redreport's pairing: per-(rank, kind) stacks
// over the canonical (rank, seq) record order.
func pairFlightSpans(t *testing.T, recs []obs.Record) []flightSpan {
	t.Helper()
	type key struct {
		rank int32
		kind string
	}
	open := map[key][]obs.Record{}
	var out []flightSpan
	for _, r := range recs {
		k := key{r.Rank, r.Kind}
		switch r.Ev {
		case obs.EvBegin:
			open[k] = append(open[k], r)
		case obs.EvEnd:
			stack := open[k]
			if len(stack) == 0 {
				t.Fatalf("span end without begin: %+v", r)
			}
			b := stack[len(stack)-1]
			open[k] = stack[:len(stack)-1]
			out = append(out, flightSpan{
				kind: r.Kind, rank: int(r.Rank), sphere: int(b.Sphere),
				step: int(b.Step), nanos: r.Nanos - b.Nanos,
			})
		}
	}
	return out
}

// TestFlightRecoveryTimeline is the PR's forensics acceptance test: a
// deterministic sphere kill must leave a black box whose recovery span
// tiles into drain/revive/resume phases summing to the episode's wall
// time, alongside the kill, exhaustion, revive, and rework records that
// explain it.
func TestFlightRecoveryTimeline(t *testing.T) {
	factory := cgFactory(t, 6, 60)
	rec := obs.NewRecorder(8192, true) // mono: real durations; cap >> traffic
	cfg := peerConfig(true)
	cfg.Recorder = rec

	res, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.PartialRestarts != 1 {
		t.Fatalf("PartialRestarts = %d, want 1", res.PartialRestarts)
	}

	recs := rec.Records()
	counts := map[string]int{}
	for _, r := range recs {
		if r.Ev == "" {
			counts[r.Kind]++
		}
	}
	if counts["kill"] != 2 || counts["dead"] != 2 {
		t.Errorf("kill/dead records = %d/%d, want 2/2", counts["kill"], counts["dead"])
	}
	if counts["sphere_exhausted"] != 1 {
		t.Errorf("sphere_exhausted records = %d, want 1", counts["sphere_exhausted"])
	}
	if counts["revive"] != 2 {
		t.Errorf("revive records = %d, want 2", counts["revive"])
	}
	if int64(counts["recompute"]) != res.RecomputedSteps {
		t.Errorf("recompute records = %d, want RecomputedSteps = %d",
			counts["recompute"], res.RecomputedSteps)
	}

	spans := pairFlightSpans(t, recs)
	var recovery, phaseSum int64
	phases := map[string]int64{}
	for _, sp := range spans {
		switch sp.kind {
		case "recovery":
			recovery = sp.nanos
		case "recovery_drain", "recovery_revive", "recovery_resume":
			phases[sp.kind] += sp.nanos
			phaseSum += sp.nanos
		}
	}
	if recovery <= 0 {
		t.Fatal("no recovery span recorded")
	}
	if len(phases) != 3 {
		t.Fatalf("recovery phases = %v, want drain+revive+resume", phases)
	}
	// The children tile the parent: what is not in a child is only span
	// bookkeeping and the usable-generation recheck. 5% of the episode
	// (plus a scheduler-noise epsilon for very fast recoveries) is the
	// budget the acceptance criterion sets.
	gap := recovery - phaseSum
	if gap < 0 {
		gap = -gap
	}
	if budget := recovery/20 + int64(200*time.Microsecond); gap > budget {
		t.Fatalf("recovery phases sum to %v of %v (gap %v > budget %v): %v",
			time.Duration(phaseSum), time.Duration(recovery), time.Duration(gap),
			time.Duration(budget), phases)
	}

	// The revived ranks fetched their image from a buddy: peer_fetch
	// spans must appear on their streams.
	var fetches int
	for _, sp := range spans {
		if sp.kind == "peer_fetch" {
			fetches++
		}
	}
	if fetches == 0 {
		t.Error("no peer_fetch spans; revived ranks restored without the peer tier?")
	}
}

// TestFlightDeterministicAcrossRuns pins the black-box determinism
// contract: in logical-clock mode, two runs of the same seeded,
// failure-free job dump byte-identical JSONL. (Failure injection runs
// kill from the injector goroutine, whose records race the victim's own
// send stream — determinism is promised for failure-free jobs, which is
// what the contract in Recorder.WriteJSONL documents.)
func TestFlightDeterministicAcrossRuns(t *testing.T) {
	factory := cgFactory(t, 6, 40)
	dump := func() []byte {
		rec := obs.NewRecorder(1<<14, false)
		cfg := Config{
			Ranks:          4,
			Degree:         2,
			StepInterval:   5,
			Seed:           7,
			AttemptTimeout: time.Minute,
			Recorder:       rec,
		}
		res, err := Run(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("job did not complete")
		}
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := dump(), dump()
	if !bytes.Equal(a, b) {
		t.Fatalf("black boxes differ between identical runs (%d vs %d bytes)", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty black box")
	}
}
