package core

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/obs"
)

func counterValue(t *testing.T, snap obs.Snapshot, name string) uint64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// peerConfig is the shared fixture for the recovery tests: CG at dual
// redundancy with frequent peer checkpoints (every 5 steps) and sparse
// stable ones (every 4th generation, i.e. every 20 steps). Killing the
// whole sphere of virtual rank 2 (physical ranks 4 and 5) at step 38
// therefore costs ~3 recomputed steps per rank with partial restart
// (rollback to the peer generation at step 35) versus ~18 with a full
// restart (rollback to the stable generation at step 20).
func peerConfig(partial bool) Config {
	return Config{
		Ranks:               4,
		Degree:              2,
		StepInterval:        5,
		PeerReplicas:        1,
		StableEvery:         4,
		PartialRestart:      partial,
		PartialRestartLimit: 2,
		StepKills:           []StepKill{{Step: 38, Rank: 4}, {Step: 38, Rank: 5}},
		MaxRestarts:         3,
		AttemptTimeout:      time.Minute,
		ComputeDelay:        200 * time.Microsecond,
	}
}

func cleanChecksum(t *testing.T, factory func() apps.App) float64 {
	t.Helper()
	clean, err := Run(Config{Ranks: 4, Degree: 1, AttemptTimeout: time.Minute}, factory)
	if err != nil {
		t.Fatal(err)
	}
	return cgChecksum(t, clean)
}

func TestPartialRestartRecoversInPlace(t *testing.T) {
	factory := cgFactory(t, 6, 60)
	want := cleanChecksum(t, factory)

	res, err := Run(peerConfig(true), factory)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if got := cgChecksum(t, res); got != want {
		t.Fatalf("checksum after partial restart = %v, want %v", got, want)
	}
	if res.Restarts != 0 {
		t.Fatalf("Restarts = %d; the sphere death should have been absorbed in place", res.Restarts)
	}
	if res.PartialRestarts != 1 {
		t.Fatalf("PartialRestarts = %d, want 1", res.PartialRestarts)
	}
	if res.TotalFailures != 2 {
		t.Fatalf("TotalFailures = %d, want 2", res.TotalFailures)
	}
	if res.RecomputedSteps == 0 {
		t.Fatal("RecomputedSteps = 0; the rollback to the peer generation recomputes work")
	}
	if got := counterValue(t, res.Metrics, "partial_restarts_total"); got != 1 {
		t.Errorf("partial_restarts_total = %d, want 1", got)
	}
	if got := counterValue(t, res.Metrics, "peerstore_replicas_total"); got == 0 {
		t.Error("no buddy replication happened")
	}
	// The revived ranks lost their memory and must have fetched their
	// sphere's image from a peer over messages.
	if got := counterValue(t, res.Metrics, "peer_fetch_remote_total"); got == 0 {
		t.Error("no remote peer fetch recorded for the revived ranks")
	}
	if got := counterValue(t, res.Metrics, "simmpi_revives_total"); got != 2 {
		t.Errorf("simmpi_revives_total = %d, want 2", got)
	}
}

// TestPartialBeatsFullRestartOnRecomputedWork is the acceptance test for
// the PR: on the same deterministic kill schedule, sphere-local restart
// from the peer tier strictly recomputes less work than a full restart
// from the (sparser) stable tier, and both converge to the clean answer.
func TestPartialBeatsFullRestartOnRecomputedWork(t *testing.T) {
	factory := cgFactory(t, 6, 60)
	want := cleanChecksum(t, factory)

	partial, err := Run(peerConfig(true), factory)
	if err != nil {
		t.Fatalf("partial-restart run: %v", err)
	}
	full, err := Run(peerConfig(false), factory)
	if err != nil {
		t.Fatalf("full-restart run: %v", err)
	}

	for name, res := range map[string]Result{"partial": partial, "full": full} {
		if !res.Completed {
			t.Fatalf("%s run did not complete", name)
		}
		if got := cgChecksum(t, res); got != want {
			t.Fatalf("%s run checksum = %v, want %v", name, got, want)
		}
	}
	if full.Restarts != 1 || full.PartialRestarts != 0 {
		t.Fatalf("full run: Restarts = %d, PartialRestarts = %d; want 1, 0",
			full.Restarts, full.PartialRestarts)
	}
	if partial.Restarts != 0 || partial.PartialRestarts != 1 {
		t.Fatalf("partial run: Restarts = %d, PartialRestarts = %d; want 0, 1",
			partial.Restarts, partial.PartialRestarts)
	}
	if partial.RecomputedSteps == 0 || full.RecomputedSteps == 0 {
		t.Fatalf("both strategies recompute something: partial=%d full=%d",
			partial.RecomputedSteps, full.RecomputedSteps)
	}
	if partial.RecomputedSteps >= full.RecomputedSteps {
		t.Fatalf("partial restart recomputed %d steps, full restart %d; partial must be strictly cheaper",
			partial.RecomputedSteps, full.RecomputedSteps)
	}
	t.Logf("recomputed steps: partial=%d full=%d", partial.RecomputedSteps, full.RecomputedSteps)
}

// TestPeerExhaustionFallsBackToFullRestart kills a sphere AND the buddy
// holding its image: no usable peer generation remains, so the
// orchestrator must deterministically fall back to a full coordinated
// restart from stable storage — and still finish correctly.
func TestPeerExhaustionFallsBackToFullRestart(t *testing.T) {
	factory := cgFactory(t, 6, 60)
	want := cleanChecksum(t, factory)

	cfg := peerConfig(true)
	// Rank 6 is sphere 3's writer replica — and, with Replicas = 1, the
	// only buddy holding sphere 2's image. Killing 4, 5, and 6 leaves no
	// live holder for virtual rank 2.
	cfg.StepKills = append(cfg.StepKills, StepKill{Step: 38, Rank: 6})
	res, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("job did not complete")
	}
	if got := cgChecksum(t, res); got != want {
		t.Fatalf("checksum = %v, want %v", got, want)
	}
	if res.PartialRestarts != 0 {
		t.Fatalf("PartialRestarts = %d; recovery must not be attempted without a usable generation", res.PartialRestarts)
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want exactly 1 full restart", res.Restarts)
	}
	if got := counterValue(t, res.Metrics, "partial_fallbacks_total"); got == 0 {
		t.Error("fallback not recorded in partial_fallbacks_total")
	}
	if got := counterValue(t, res.Metrics, "partial_restarts_total"); got != 0 {
		t.Errorf("partial_restarts_total = %d, want 0", got)
	}
}

func TestPeerTierCleanRunIsTransparent(t *testing.T) {
	factory := cgFactory(t, 6, 60)
	want := cleanChecksum(t, factory)
	cfg := peerConfig(true)
	cfg.StepKills = nil
	res, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Restarts != 0 || res.PartialRestarts != 0 {
		t.Fatalf("clean run: completed=%v restarts=%d partials=%d",
			res.Completed, res.Restarts, res.PartialRestarts)
	}
	if got := cgChecksum(t, res); got != want {
		t.Fatalf("checksum = %v, want %v", got, want)
	}
	if res.RecomputedSteps != 0 {
		t.Fatalf("RecomputedSteps = %d in a failure-free run", res.RecomputedSteps)
	}
}

func TestPartialRestartConfigValidation(t *testing.T) {
	factory := func() apps.App { return &apps.TaskFarm{Tasks: 1} }
	bad := []Config{
		{Ranks: 2, Degree: 1, PeerReplicas: -1},
		{Ranks: 2, Degree: 1, StableEvery: -1},
		{Ranks: 2, Degree: 1, StableEvery: 4},                                    // stable cadence without a peer tier
		{Ranks: 2, Degree: 1, PartialRestart: true},                              // partial restart without a peer tier
		{Ranks: 2, Degree: 1, PartialRestart: true, PeerReplicas: 1},             // ... without checkpointing
		{Ranks: 2, Degree: 1, StepKills: []StepKill{{Step: 0, Rank: 0}}},         // step kills are 1-based
		{Ranks: 2, Degree: 1, StepKills: []StepKill{{Step: 1, Rank: -1}}},        // negative rank
		{Ranks: 2, Degree: 1, StepInterval: 5, PeerReplicas: 1, StableEvery: -2}, // negative cadence
		{Ranks: 2, Degree: 1, PeerDataShards: -1},                                // negative shard counts
		{Ranks: 2, Degree: 1, PeerParityShards: -1},
		{Ranks: 2, Degree: 2, StepInterval: 5, PeerDataShards: 2},                    // data shards without parity
		{Ranks: 2, Degree: 2, StepInterval: 5, PeerParityShards: 1},                  // parity without data shards
		{Ranks: 2, Degree: 2, StepInterval: 5, PeerDataShards: 1, PeerParityShards: 1}, // k=1 is a full copy, not a code
		{Ranks: 2, Degree: 2, StepInterval: 5, PeerReplicas: 1, PeerDataShards: 2, PeerParityShards: 1}, // both tiers at once
		{Ranks: 2, Degree: 1, StepInterval: 5, PeerBudgetBytes: 1 << 20},         // budget without a peer tier
		{Ranks: 2, Degree: 2, StepInterval: 5, PeerDataShards: 2, PeerParityShards: 1, PeerBudgetBytes: -1}, // negative budget
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, factory); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	// The erasure tier is a peer tier: PartialRestart and StableEvery
	// gate on it exactly as they do on full copies.
	good := Config{
		Ranks: 4, Degree: 2, StepInterval: 5, StableEvery: 4, PartialRestart: true,
		PeerDataShards: 2, PeerParityShards: 1, PeerBudgetBytes: 1 << 20,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("erasure peer tier config rejected: %v", err)
	}
}
