package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/checkpoint"
	"repro/internal/failure"
	"repro/internal/redundancy"
)

// TestChaosManySeeds hammers the full stack: CG at partial redundancy
// with random Poisson kills across many seeds. Every run must either
// complete with the right answer or exhaust its restart budget cleanly —
// never deadlock, never return a wrong result, never surface a transport
// error as an application error.
func TestChaosManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	m, err := apps.Laplacian2D(6)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(Config{Ranks: 4, Degree: 1, AttemptTimeout: time.Minute},
		func() apps.App { return &apps.CG{Matrix: m, Iterations: 60} })
	if err != nil {
		t.Fatal(err)
	}
	want := cgChecksum(t, clean)

	completed, exhausted := 0, 0
	for seed := int64(0); seed < 12; seed++ {
		for _, degree := range []float64{1, 1.5, 2} {
			res, err := Run(Config{
				Ranks:          4,
				Degree:         degree,
				StepInterval:   15,
				NodeMTBF:       800 * time.Millisecond,
				Seed:           seed,
				MaxRestarts:    6,
				AttemptTimeout: 30 * time.Second,
				ComputeDelay:   500 * time.Microsecond,
			}, func() apps.App { return &apps.CG{Matrix: m, Iterations: 60} })
			switch {
			case err == nil:
				completed++
				if !res.Completed {
					t.Fatalf("seed %d r=%v: nil error but not completed", seed, degree)
				}
				if got := cgChecksum(t, res); got != want {
					t.Fatalf("seed %d r=%v: checksum %v, want %v", seed, degree, got, want)
				}
			case errors.Is(err, ErrRestartsExhausted):
				exhausted++
			default:
				t.Fatalf("seed %d r=%v: unexpected error %v", seed, degree, err)
			}
		}
	}
	t.Logf("chaos: %d completed, %d exhausted restarts", completed, exhausted)
	if completed == 0 {
		t.Fatal("no chaos run ever completed; MTBF too harsh for the suite to mean anything")
	}
}

// TestChaosRedundancyImprovesSurvival verifies the paper's core premise
// end to end: with the same failure environment and no restart budget,
// dual redundancy completes far more often than no redundancy.
func TestChaosRedundancyImprovesSurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	m, err := apps.Laplacian2D(6)
	if err != nil {
		t.Fatal(err)
	}
	survive := func(degree float64) int {
		wins := 0
		for seed := int64(100); seed < 120; seed++ {
			_, err := Run(Config{
				Ranks:          4,
				Degree:         degree,
				NodeMTBF:       1200 * time.Millisecond,
				Seed:           seed,
				MaxRestarts:    0,
				AttemptTimeout: 30 * time.Second,
				ComputeDelay:   500 * time.Microsecond,
			}, func() apps.App { return &apps.CG{Matrix: m, Iterations: 50} })
			if err == nil {
				wins++
			}
		}
		return wins
	}
	w1, w2 := survive(1), survive(2)
	t.Logf("survival out of 20: 1x=%d, 2x=%d", w1, w2)
	if w2 <= w1 {
		t.Fatalf("2x survived %d runs vs 1x's %d; redundancy not helping", w2, w1)
	}
}

// TestMsgPlusHashThroughRunner exercises the hash comparison mode across
// the full stack (failure-free, its supported regime).
func TestMsgPlusHashThroughRunner(t *testing.T) {
	m, err := apps.Laplacian2D(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Ranks:          4,
		Degree:         3,
		Mode:           redundancy.MsgPlusHash,
		StepInterval:   10,
		AttemptTimeout: time.Minute,
	}, func() apps.App { return &apps.CG{Matrix: m, Iterations: 30} })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Redundancy.Mismatches != 0 {
		t.Fatalf("%+v", res)
	}
	clean, err := Run(Config{Ranks: 4, Degree: 1, AttemptTimeout: time.Minute},
		func() apps.App { return &apps.CG{Matrix: m, Iterations: 30} })
	if err != nil {
		t.Fatal(err)
	}
	if cgChecksum(t, res) != cgChecksum(t, clean) {
		t.Fatal("hash-mode checksum differs from plain run")
	}
}

// TestRunnerWithFileStorageAcrossRestart uses the file-backed store so a
// restart reads images through the full tmp+rename+COMMIT path.
func TestRunnerWithFileStorageAcrossRestart(t *testing.T) {
	store, err := checkpoint.NewFileStorage(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, err := apps.Laplacian2D(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Ranks:           3,
		Degree:          1,
		Storage:         store,
		StepInterval:    15,
		FailureSchedule: []failure.Kill{{Rank: 2, After: 200 * time.Millisecond}},
		MaxRestarts:     4,
		AttemptTimeout:  time.Minute,
		ComputeDelay:    3 * time.Millisecond,
	}, func() apps.App { return &apps.CG{Matrix: m, Iterations: 120} })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Restarts == 0 {
		t.Fatalf("%+v", res)
	}
	if !res.Attempts[len(res.Attempts)-1].Restored {
		t.Fatal("restart did not restore from file storage")
	}
}

// TestRunnerWithCompressedStorage verifies the compression middleware end
// to end under the runner.
func TestRunnerWithCompressedStorage(t *testing.T) {
	store := checkpoint.NewCompressedStorage(checkpoint.NewMemStorage())
	m, err := apps.Laplacian2D(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Ranks:        3,
		Degree:       2,
		Storage:      store,
		StepInterval: 10,
		// Both replicas of virtual rank 0 die → job failure → restart.
		FailureSchedule: []failure.Kill{
			{Rank: 0, After: 150 * time.Millisecond},
			{Rank: 3, After: 160 * time.Millisecond},
		},
		MaxRestarts:    4,
		AttemptTimeout: time.Minute,
		ComputeDelay:   3 * time.Millisecond,
	}, func() apps.App { return &apps.CG{Matrix: m, Iterations: 100} })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
}

// TestPartialDegreeUnderFire runs 1.5x with a kill aimed at an
// unreplicated rank: job failure and restart; and a kill aimed at a
// replicated rank: tolerated.
func TestPartialDegreeUnderFire(t *testing.T) {
	rm, err := redundancy.NewRankMap(4, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// At 1.5x on 4 ranks, even virtual ranks are duplicated.
	dup, err := rm.Sphere(0)
	if err != nil {
		t.Fatal(err)
	}
	single, err := rm.Sphere(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dup) != 2 || len(single) != 1 {
		t.Fatalf("unexpected spheres %v %v", dup, single)
	}
	m, err := apps.Laplacian2D(6)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() apps.App { return &apps.CG{Matrix: m, Iterations: 150} }

	tolerated, err := Run(Config{
		Ranks: 4, Degree: 1.5,
		FailureSchedule: []failure.Kill{{Rank: dup[1], After: 100 * time.Millisecond}},
		MaxRestarts:     0,
		AttemptTimeout:  time.Minute,
		ComputeDelay:    time.Millisecond,
	}, factory)
	if err != nil {
		t.Fatalf("replica kill at 1.5x should be tolerated: %v", err)
	}
	if tolerated.Restarts != 0 {
		t.Fatalf("tolerated run restarted: %+v", tolerated)
	}

	res, err := Run(Config{
		Ranks: 4, Degree: 1.5,
		Storage:         checkpoint.NewMemStorage(),
		StepInterval:    20,
		FailureSchedule: []failure.Kill{{Rank: single[0], After: 150 * time.Millisecond}},
		MaxRestarts:     3,
		AttemptTimeout:  time.Minute,
		ComputeDelay:    2 * time.Millisecond,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Fatal("killing an unreplicated rank at 1.5x must fail the job")
	}
	if !res.Completed {
		t.Fatalf("%+v", res)
	}
}
