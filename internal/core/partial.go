package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/checkpoint"
	"repro/internal/failure"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/redundancy"
	"repro/internal/simmpi"
)

// StepKill is a deterministic, step-triggered failure: when the
// application first reports reaching Step (via the writer replica's
// NoteStep hook), physical rank Rank is fail-stopped. Unlike time-based
// schedules this pins the kill to an exact point in the computation, so
// recomputed-work comparisons between recovery strategies are exact and
// race-free. Each entry fires at most once per Run.
type StepKill struct {
	// Step is the 1-based application step that triggers the kill.
	Step int
	// Rank is the physical rank to kill.
	Rank int
}

// stepAccounting tracks per-virtual-rank step high-water marks across an
// entire Run: a step at or below the high-water mark is recomputation —
// the paper's rework term, made observable. It also owns the fire-once
// state of the step-triggered kill schedule.
type stepAccounting struct {
	hwm        []atomic.Int64
	observed   *obs.Gauge // runner_steps_observed
	recomputed *obs.Gauge // runner_recomputed_steps
	flight     *obs.Recorder
	kills      []StepKill
	fired      []atomic.Bool
}

func newStepAccounting(nVirtual int, kills []StepKill, reg *obs.Registry, flight *obs.Recorder) *stepAccounting {
	return &stepAccounting{
		hwm:        make([]atomic.Int64, nVirtual),
		observed:   reg.Gauge("runner_steps_observed"),
		recomputed: reg.Gauge("runner_recomputed_steps"),
		flight:     flight,
		kills:      kills,
		fired:      make([]atomic.Bool, len(kills)),
	}
}

// note records one executed step of virtual rank v.
func (a *stepAccounting) note(v, step int) {
	a.observed.Add(1)
	for {
		cur := a.hwm[v].Load()
		if int64(step) <= cur {
			a.recomputed.Add(1)
			// Rework, observed directly: redreport counts these records
			// to attribute lost-and-redone steps to each recovery.
			a.flight.Emit("recompute", v, -1, step, 0)
			return
		}
		if a.hwm[v].CompareAndSwap(cur, int64(step)) {
			return
		}
	}
}

// maybeFire triggers any step kill whose step has been reached.
func (a *stepAccounting) maybeFire(step int, inj *failure.Injector) {
	if inj == nil {
		return
	}
	for i := range a.kills {
		if step >= a.kills[i].Step && a.fired[i].CompareAndSwap(false, true) {
			inj.InjectNow(a.kills[i].Rank)
		}
	}
}

// epochResult is what one driver epoch (one application execution)
// produced.
type epochResult struct {
	app         apps.App
	stats       redundancy.Stats
	checkpoints int
	restores    int
	err         error
}

// partialGate coordinates one attempt's per-rank driver goroutines with
// its supervisor. Each driver runs the application in *epochs*; between
// epochs the supervisor may pause the world (transport interrupt),
// revive the dead ranks, and release everyone into a fresh epoch that
// restarts from the peer-replicated checkpoint — the sphere-local
// partial restart. When recovery is impossible the supervisor aborts the
// world exactly as the pre-existing full-restart path did. The gate is
// typed against mpi.Transport, so the same orchestration drives the
// simulated backend and any other transport hosting every rank
// in-process.
type partialGate struct {
	cfg     Config
	world   mpi.Transport
	rankMap *redundancy.RankMap
	spheres [][]int
	store   checkpoint.Storage
	peer    *checkpoint.PeerStore
	pipe    *checkpoint.Pipeline
	inj     *failure.Injector
	jobReg  *obs.Registry
	factory func() apps.App
	acct    *stepAccounting
	limit   int

	// commOpts is the shared mpi.Option list every epoch's
	// redundancy.Wrap consumes; built once from the attempt config, it
	// selects mode, liveness, and per-rank corruption injection.
	commOpts []mpi.Option

	partials  *obs.Counter // partial_restarts_total (nil unless enabled)
	fallbacks *obs.Counter // partial_fallbacks_total

	serverWG sync.WaitGroup

	mu           sync.Mutex
	cond         *sync.Cond
	active       int
	parked       int
	interrupting bool
	release      chan struct{}
	done         chan struct{}
	doneClosed   bool

	partialRestarts int
	fetchAborted    bool

	completedBy    map[int]apps.App
	appErrs        map[int]error
	redStats       redundancy.Stats
	maxCheckpoints int
	restored       bool
}

func newPartialGate(cfg Config, world mpi.Transport, rankMap *redundancy.RankMap,
	spheres [][]int, store checkpoint.Storage, peer *checkpoint.PeerStore,
	pipe *checkpoint.Pipeline, inj *failure.Injector, jobReg *obs.Registry,
	acct *stepAccounting, factory func() apps.App,
) *partialGate {
	g := &partialGate{
		cfg:         cfg,
		world:       world,
		rankMap:     rankMap,
		spheres:     spheres,
		store:       store,
		peer:        peer,
		pipe:        pipe,
		inj:         inj,
		jobReg:      jobReg,
		factory:     factory,
		acct:        acct,
		limit:       cfg.PartialRestartLimit,
		release:     make(chan struct{}),
		done:        make(chan struct{}),
		completedBy: make(map[int]apps.App),
		appErrs:     make(map[int]error),
	}
	g.cond = sync.NewCond(&g.mu)
	if g.limit <= 0 {
		g.limit = 3
	}
	g.commOpts = []mpi.Option{
		mpi.WithDegree(cfg.Degree),
		mpi.WithHashCompare(cfg.Mode == redundancy.MsgPlusHash),
		mpi.WithLiveness(world),
		mpi.WithCorruptRanks(cfg.CorruptRanks),
	}
	if g.recoveryEnabled() {
		// Feature-gated registration: jobs without partial restart never
		// see these counters (keeps existing golden snapshots additive).
		g.partials = jobReg.Counter("partial_restarts_total")
		g.fallbacks = jobReg.Counter("partial_fallbacks_total")
	}
	return g
}

func (g *partialGate) recoveryEnabled() bool {
	return g.cfg.PartialRestart && g.peer != nil && g.inj != nil
}

// startServers launches one peer-store server goroutine per live rank;
// each exits when its communicator errors (kill, interrupt, abort).
func (g *partialGate) startServers() {
	if g.peer == nil {
		return
	}
	// ForEachLive skips dead regions a word at a time; at start every
	// rank is live and after a recovery everyone has been revived, so
	// this is the same set the old Alive poll produced, without the
	// per-rank liveness check.
	g.world.ForEachLive(func(p int) {
		comm, err := g.world.Endpoint(p)
		if err != nil {
			return
		}
		g.serverWG.Add(1)
		go func(c mpi.Comm) {
			defer g.serverWG.Done()
			g.peer.Serve(c)
		}(comm)
	})
}

// spawnAll registers every rank as active before launching any driver,
// so the attempt cannot be declared done while spawning is in progress.
func (g *partialGate) spawnAll() {
	g.mu.Lock()
	g.active = g.world.Size()
	g.mu.Unlock()
	for p := 0; p < g.world.Size(); p++ {
		go g.driver(p)
	}
}

// spawnLocked adds one driver mid-attempt (revived rank, or a completed
// rank that must recompute after a rollback). Caller holds g.mu.
func (g *partialGate) spawnLocked(p int) {
	g.active++
	if g.doneClosed {
		// The attempt had drained completely; recovery reopens it.
		g.done = make(chan struct{})
		g.doneClosed = false
	}
	go g.driver(p)
}

// driver runs one physical rank: epochs of the application until the
// rank exits (completion, death, abort, or unrecoverable error).
func (g *partialGate) driver(p int) {
	for {
		res := g.runEpoch(p)
		rerun, release := g.epochEnd(p, res)
		if !rerun {
			return
		}
		<-release
	}
}

// runEpoch executes the application once for rank p: fresh interposition
// layer, fresh checkpoint client (restore happens inside the app), then
// the app itself.
func (g *partialGate) runEpoch(p int) epochResult {
	pc, err := g.world.Endpoint(p)
	if err != nil {
		return epochResult{err: err}
	}
	rc, err := redundancy.Wrap(pc, g.rankMap, g.commOpts...)
	if err != nil {
		return epochResult{err: err}
	}
	ccfg := checkpoint.Config{
		Storage: g.store,
		Obs:     g.jobReg,
		Trace:   g.cfg.Tracer,
		Flight:  g.cfg.Recorder,
	}
	if g.peer != nil {
		// Every replica stashes into its own memory shard, so survivors
		// of a partial restart restore without touching the network.
		ccfg.Storage = g.peer.View(pc)
		ccfg.WriteAllReplicas = true
	}
	if g.cfg.StepInterval > 0 {
		ccfg.StepInterval = g.cfg.StepInterval
		ccfg.SkipBookmark = g.cfg.SkipBookmark
	}
	ccfg.Pipeline = g.pipe
	client, err := checkpoint.NewClient(rc, ccfg)
	if err != nil {
		return epochResult{err: err}
	}
	myPhys := pc.Rank()
	v := rc.Rank()
	sphere := g.spheres[v]
	world := g.world
	inj := g.inj
	acct := g.acct
	ctx := &apps.Context{
		Comm: rc,
		Ckpt: client,
		IsWriter: func() bool {
			for _, q := range sphere {
				if world.Alive(q) {
					return q == myPhys
				}
			}
			return false
		},
		ComputeDelay: g.cfg.ComputeDelay,
		NoteStep: func(step int) {
			acct.note(v, step)
			acct.maybeFire(step, inj)
		},
	}
	app := g.factory()
	runErr := app.Run(ctx)
	if runErr == nil && g.pipe != nil {
		// Drain before declaring the epoch complete so the final
		// generation commits — the explicit drain point of the
		// async-pipeline ordering contract. Collective: every rank that
		// finished cleanly participates; if a failure felled the others,
		// the drain's barriers surface the usual failure-class errors
		// and epochEnd treats this rank as a casualty, same as a
		// mid-checkpoint death.
		runErr = client.Drain()
	}
	return epochResult{
		app:         app,
		stats:       rc.Stats(),
		checkpoints: client.Checkpoints(),
		restores:    client.Restores(),
		err:         runErr,
	}
}

// epochEnd classifies one finished epoch under the gate's lock: exit the
// driver, or park it for the next epoch. The classification and the
// supervisor's interrupt decision are serialised on g.mu, so a driver
// can never slip out after recovery has begun.
func (g *partialGate) epochEnd(p int, res epochResult) (rerun bool, release chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	addStats(&g.redStats, res.stats)
	if res.checkpoints > g.maxCheckpoints {
		g.maxCheckpoints = res.checkpoints
	}
	if res.restores > 0 {
		g.restored = true
	}
	switch {
	case g.world.Aborted(), !g.world.Alive(p):
		return g.exitLocked()
	case g.interrupting:
		return g.parkLocked()
	case res.err == nil:
		g.completedBy[p] = res.app
		return g.exitLocked()
	case errors.Is(res.err, checkpoint.ErrPeerFetchExhausted):
		// Peer recovery failed under this rank: tear the job down so the
		// orchestrator performs a full restart from stable storage.
		g.fetchAborted = true
		g.world.Abort()
		return g.exitLocked()
	case isFailureClass(res.err):
		if g.recoveryEnabled() {
			// A sphere is dying around us; park until the supervisor
			// either recovers in place or aborts for a full restart.
			return g.parkLocked()
		}
		return g.exitLocked() // expected casualty, like world.Run's failureErrs
	case g.recoveryEnabled() && isCheckpointCasualty(res.err):
		return g.parkLocked()
	default:
		if _, dup := g.appErrs[p]; !dup {
			g.appErrs[p] = res.err
		}
		return g.exitLocked()
	}
}

func (g *partialGate) exitLocked() (bool, chan struct{}) {
	g.active--
	if g.active == 0 && !g.doneClosed {
		g.doneClosed = true
		close(g.done)
	}
	g.cond.Broadcast()
	return false, nil
}

func (g *partialGate) parkLocked() (bool, chan struct{}) {
	g.parked++
	g.cond.Broadcast()
	return true, g.release
}

// releaseParked starts a fresh epoch for every parked driver (used on
// the abort path; woken drivers observe the aborted world and exit).
func (g *partialGate) releaseParked() {
	g.mu.Lock()
	old := g.release
	g.release = make(chan struct{})
	g.parked = 0
	g.mu.Unlock()
	close(old)
}

// doneCh returns the current completion channel (recovery can reopen it).
func (g *partialGate) doneCh() chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.done
}

// supervise is the attempt's control loop, replacing the old watchdog
// goroutine: it waits for completion, job failure, or the watchdog
// timeout, attempting an in-place recovery on job failure before falling
// back to the abort-and-restart path.
func (g *partialGate) supervise(timeout time.Duration) (jobFailed, timedOut bool) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var failedCh <-chan int
	if g.inj != nil {
		failedCh = g.inj.JobFailed()
	}
	abort := func() {
		g.world.Abort()
		g.releaseParked()
		failedCh = nil
	}
	for {
		select {
		case <-g.doneCh():
			// Give a pending failure event priority over completion: the
			// last drivers may have drained exactly as a sphere died, in
			// which case recovery must reopen the attempt.
			select {
			case v := <-failedCh:
				if g.tryRecover(v) {
					continue
				}
				jobFailed = true
				abort()
				continue
			default:
			}
			return jobFailed, timedOut
		case v := <-failedCh:
			if g.tryRecover(v) {
				continue
			}
			jobFailed = true
			abort()
		case <-timer.C:
			timedOut = true
			abort()
		}
	}
}

// tryRecover performs a sphere-local partial restart: pause the world,
// drain every live driver to its epoch boundary, revive the dead ranks,
// rearm the injector, and release everyone into a fresh epoch restoring
// from the newest peer-held generation. Returns false when the fallback
// to a full coordinated restart is required (feature off, budget spent,
// or no generation fully covered by live holders).
func (g *partialGate) tryRecover(sphere int) bool {
	if !g.recoveryEnabled() {
		return false
	}
	if g.partialRestarts >= g.limit {
		g.fallbacks.Inc()
		return false
	}
	if _, _, ok := g.peer.UsableGeneration(); !ok {
		g.fallbacks.Inc()
		return false
	}

	// The recovery span tiles into drain/revive/resume children, so a
	// timeline reader can attribute the episode's wall time to its
	// phases (the children sum to the parent, minus span bookkeeping).
	rec := g.cfg.Recorder
	episode := g.partialRestarts
	sp := rec.StartSpan("recovery", -1, sphere, episode)
	defer sp.End()

	drain := rec.StartSpan("recovery_drain", -1, sphere, episode)
	g.mu.Lock()
	g.interrupting = true
	g.mu.Unlock()
	g.world.Interrupt()
	g.mu.Lock()
	for g.parked < g.active {
		g.cond.Wait()
	}
	g.mu.Unlock()
	g.serverWG.Wait()
	drain.End()

	// Under async checkpointing the newest generation may be fully
	// stashed but not yet committed (the commit-lags-one window). Flush
	// the pipeline so every enqueued peer write has run, discard the
	// settle debt of frames addressed to the dead ranks, then promote
	// the newest complete generation — recovery then rolls back exactly
	// as far as the synchronous tier would.
	if g.pipe != nil {
		g.pipe.Flush()
	}
	g.peer.ResetPending()
	g.peer.PromoteComplete()

	// Re-check under quiesced state: more deaths may have landed while
	// draining, and they may have taken the last holder with them.
	gen, _, ok := g.peer.UsableGeneration()
	if !ok {
		g.fallbacks.Inc()
		return false // caller aborts; parked drivers wake and exit
	}

	revSpan := rec.StartSpan("recovery_revive", -1, sphere, episode)
	var revived []int
	// The world is quiesced (interrupted, injector stopped between kills),
	// so the dead-rank sweep is an exact snapshot — and it costs
	// O(failures), not a 100k-rank Alive poll.
	g.world.ForEachDead(func(p int) {
		// The rank's memory died with it: wipe its shard before the new
		// incarnation rejoins, so fetches are never routed to it until it
		// re-stashes at the next checkpoint.
		g.peer.InvalidateRank(p)
		revived = append(revived, p)
	})
	for _, p := range revived {
		g.world.Revive(p)
	}
	revSpan.End()

	resume := rec.StartSpan("recovery_resume", -1, sphere, episode)
	g.inj.Rearm()
	g.world.Resume()
	g.startServers()

	g.mu.Lock()
	g.partialRestarts++
	g.interrupting = false
	old := g.release
	g.release = make(chan struct{})
	g.parked = 0
	for _, p := range revived {
		g.spawnLocked(p)
	}
	// Ranks that finished before the rollback point must recompute too —
	// their peers are about to replay messages at them.
	for p := range g.completedBy {
		delete(g.completedBy, p)
		g.spawnLocked(p)
	}
	g.mu.Unlock()
	close(old)
	resume.End()

	g.partials.Inc()
	g.cfg.Tracer.Emit("partial_restart", -1, sphere, int(gen), map[string]any{
		"revived": len(revived),
	})
	return true
}

// completedApps returns the apps that finished the final epoch cleanly.
func (g *partialGate) completedApps() []apps.App {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]apps.App, 0, len(g.completedBy))
	for p := 0; p < g.world.Size(); p++ {
		if app, ok := g.completedBy[p]; ok {
			out = append(out, app)
		}
	}
	return out
}

// firstAppError returns the lowest-rank application error, matching the
// rank-ordered selection of the old world.Run path.
func (g *partialGate) firstAppError() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for p := 0; p < g.world.Size(); p++ {
		if err, ok := g.appErrs[p]; ok {
			return RankError{Rank: p, Err: err}
		}
	}
	return nil
}

// RankError pairs a rank with the error its driver returned (the core
// analogue of simmpi.RankError, kept for error-message compatibility).
type RankError = simmpi.RankError

// isFailureClass reports errors that are expected casualties of failure
// injection rather than application bugs.
func isFailureClass(err error) bool {
	return errors.Is(err, mpi.ErrKilled) ||
		errors.Is(err, mpi.ErrPeerDead) ||
		errors.Is(err, mpi.ErrFailurePending) ||
		errors.Is(err, mpi.ErrAborted) ||
		errors.Is(err, mpi.ErrInterrupted) ||
		errors.Is(err, redundancy.ErrSphereDead)
}
