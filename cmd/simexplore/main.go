// Command simexplore runs the Monte-Carlo cluster simulator over a
// redundancy-degree sweep for arbitrary job parameters — the empirical
// companion to modelexplore (which evaluates the closed-form model).
//
// Examples:
//
//	simexplore -n 128 -work 46m -mtbf 6h -c 120s -restart 500s -runs 400
//	simexplore -n 1024 -work 12h -mtbf 2.5y -c 5m -law sphere
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/model"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simexplore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simexplore", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 128, "virtual process count N")
		workS    = fs.String("work", "46m", "base execution time t")
		mtbfS    = fs.String("mtbf", "6h", "per-node MTBF θ")
		cS       = fs.String("c", "120s", "checkpoint cost c")
		restartS = fs.String("restart", "500s", "restart cost R")
		alpha    = fs.Float64("alpha", 0.2, "communication/computation ratio α")
		step     = fs.Float64("step", 0.25, "degree sweep step")
		rmax     = fs.Float64("rmax", 3, "degree sweep upper bound")
		runs     = fs.Int("runs", 200, "Monte-Carlo runs per degree")
		seed     = fs.Int64("seed", 1, "seed")
		lawS     = fs.String("law", "model", "failure law: model (Eq. 10 rate) | sphere (exact renewal)")
		full     = fs.Bool("full-exposure", false, "expose checkpoint and restart phases to failures (§4 model regime)")
		csv      = fs.Bool("csv", false, "CSV output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	work, err := cliutil.ParseSeconds(*workS)
	if err != nil {
		return fmt.Errorf("bad -work: %w", err)
	}
	mtbf, err := cliutil.ParseSeconds(*mtbfS)
	if err != nil {
		return fmt.Errorf("bad -mtbf: %w", err)
	}
	c, err := cliutil.ParseSeconds(*cS)
	if err != nil {
		return fmt.Errorf("bad -c: %w", err)
	}
	restart, err := cliutil.ParseSeconds(*restartS)
	if err != nil {
		return fmt.Errorf("bad -restart: %w", err)
	}
	var law sim.FailureLaw
	switch *lawS {
	case "model":
		law = sim.LawModelRate
	case "sphere":
		law = sim.LawSphere
	default:
		return fmt.Errorf("unknown law %q", *lawS)
	}

	sep := "  "
	if *csv {
		sep = ","
	}
	fmt.Printf("degree%smean_h%sstddev_h%smin_h%smax_h%sfailures%scheckpoints%slost_work_h\n",
		sep, sep, sep, sep, sep, sep, sep)
	bestDegree, bestMean := 0.0, -1.0
	for r := 1.0; r <= *rmax+1e-9; r += *step {
		cfg := sim.Config{
			N:                    *n,
			Degree:               r,
			Work:                 work,
			Alpha:                *alpha,
			NodeMTBF:             mtbf,
			CheckpointCost:       c,
			RestartCost:          restart,
			Law:                  law,
			FailDuringCheckpoint: *full,
			FailDuringRestart:    *full,
		}
		est, err := sim.Run(cfg, *runs, *seed)
		if err != nil {
			return fmt.Errorf("r=%v: %w", r, err)
		}
		fmt.Printf("%.2f%s%.2f%s%.2f%s%.2f%s%.2f%s%.2f%s%.1f%s%.2f\n",
			r, sep,
			est.Total.Mean/model.Hour, sep,
			est.Total.StdDev/model.Hour, sep,
			est.Total.Min/model.Hour, sep,
			est.Total.Max/model.Hour, sep,
			est.MeanFailures, sep,
			est.MeanCheckpoints, sep,
			est.MeanLostWork/model.Hour)
		if bestMean < 0 || est.Total.Mean < bestMean {
			bestMean = est.Total.Mean
			bestDegree = r
		}
	}
	fmt.Printf("\nbest degree %.2f with mean completion %.2f h (%d runs per point, %s law)\n",
		bestDegree, bestMean/model.Hour, *runs, *lawS)
	return nil
}
