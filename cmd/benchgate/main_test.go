package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/simmpi
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPingPong-8       	       1	    900000 ns/op	1132.26 MB/s
BenchmarkPingPong-8       	       1	   1000000 ns/op	1100.00 MB/s
BenchmarkPingPong-8       	       1	   1100000 ns/op	1000.00 MB/s
BenchmarkEpochBoundary-8  	       1	   2000000 ns/op
BenchmarkTiny             	       1	     10000 ns/op
PASS
ok  	repro/internal/simmpi	0.014s
`

func TestParseBenchTakesMedian(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	pp, ok := rep.Benchmarks["BenchmarkPingPong"]
	if !ok {
		t.Fatalf("PingPong missing (GOMAXPROCS suffix not stripped?): %+v", rep)
	}
	if pp.NsPerOp != 1_000_000 || pp.Samples != 3 {
		t.Fatalf("PingPong = %+v, want median 1e6 over 3 samples", pp)
	}
	if eb := rep.Benchmarks["BenchmarkEpochBoundary"]; eb.NsPerOp != 2_000_000 {
		t.Fatalf("EpochBoundary = %+v", eb)
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	input := filepath.Join(dir, "bench.txt")
	artifact := filepath.Join(dir, "BENCH_PR3.json")
	if err := os.WriteFile(input, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	// Seed the baseline from the same samples, then gate: zero delta.
	if err := run([]string{"-in", input, "-update", "-baseline", baseline}, nil, os.Stderr); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-in", input, "-baseline", baseline, "-out", artifact}, nil, &sb); err != nil {
		t.Fatalf("identical samples failed the gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "benchgate: PASS") {
		t.Fatalf("missing PASS line:\n%s", sb.String())
	}
	if _, err := os.Stat(artifact); err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	base := filepath.Join(dir, "base.txt")
	slow := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(base, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	// 50% slower PingPong, EpochBoundary unchanged.
	slower := strings.ReplaceAll(sampleOutput, "1000000 ns/op", "1500000 ns/op")
	slower = strings.ReplaceAll(slower, "900000 ns/op", "1500000 ns/op")
	slower = strings.ReplaceAll(slower, "1100000 ns/op", "1500000 ns/op")
	if err := os.WriteFile(slow, []byte(slower), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", base, "-update", "-baseline", baseline}, nil, os.Stderr); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-in", slow, "-baseline", baseline}, nil, &sb)
	if err == nil {
		t.Fatalf("50%% regression passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkPingPong") {
		t.Fatalf("error %q does not name the regressed benchmark", err)
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("report missing REGRESSION verdict:\n%s", sb.String())
	}
}

func TestGateSkipsBenchesBelowFloor(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	base := filepath.Join(dir, "base.txt")
	slow := filepath.Join(dir, "slow.txt")
	if err := os.WriteFile(base, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	// BenchmarkTiny (10 µs baseline, under the 500 µs floor) triples: a
	// swing that large is pure scheduler noise at that scale.
	slower := strings.ReplaceAll(sampleOutput, "10000 ns/op", "30000 ns/op")
	if err := os.WriteFile(slow, []byte(slower), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", base, "-update", "-baseline", baseline}, nil, os.Stderr); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-in", slow, "-baseline", baseline}, nil, &sb); err != nil {
		t.Fatalf("sub-floor benchmark failed the gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "skipped (below floor)") {
		t.Fatalf("report missing floor skip note:\n%s", sb.String())
	}
}

const benchmemOutput = `goos: linux
pkg: repro/internal/simmpi
BenchmarkPingPong-8       	       1	    900000 ns/op	1132.26 MB/s	     812 B/op	       3 allocs/op
BenchmarkPingPong-8       	       1	   1000000 ns/op	1100.00 MB/s	     812 B/op	       3 allocs/op
BenchmarkPingPong-8       	       1	   1100000 ns/op	1000.00 MB/s	     900 B/op	       5 allocs/op
BenchmarkEpochBoundary-8  	       1	   2000000 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseBenchReadsAllocs(t *testing.T) {
	rep, err := parseBench(strings.NewReader(benchmemOutput))
	if err != nil {
		t.Fatal(err)
	}
	pp := rep.Benchmarks["BenchmarkPingPong"]
	if pp.AllocsPerOp == nil || *pp.AllocsPerOp != 3 {
		t.Fatalf("PingPong allocs = %+v, want median 3", pp.AllocsPerOp)
	}
	if eb := rep.Benchmarks["BenchmarkEpochBoundary"]; eb.AllocsPerOp == nil || *eb.AllocsPerOp != 0 {
		t.Fatalf("EpochBoundary allocs = %+v, want 0", eb.AllocsPerOp)
	}
	// Plain output (no -benchmem) must leave the field nil so old-style
	// baselines never trip the allocation gate.
	plain, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if a := plain.Benchmarks["BenchmarkPingPong"].AllocsPerOp; a != nil {
		t.Fatalf("allocs parsed from output without -benchmem: %v", *a)
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	base := filepath.Join(dir, "base.txt")
	leaky := filepath.Join(dir, "leaky.txt")
	if err := os.WriteFile(base, []byte(benchmemOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	// 3 → 40 allocs/op: far beyond 10% + slack 2, while ns/op is unchanged.
	worse := strings.ReplaceAll(benchmemOutput, "3 allocs/op", "40 allocs/op")
	if err := os.WriteFile(leaky, []byte(worse), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", base, "-update", "-baseline", baseline}, nil, os.Stderr); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-in", leaky, "-baseline", baseline}, nil, &sb)
	if err == nil {
		t.Fatalf("alloc regression passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkPingPong (allocs/op)") {
		t.Fatalf("error %q does not name the allocs gate", err)
	}
}

func TestGateAllowsAllocSlack(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	base := filepath.Join(dir, "base.txt")
	wobble := filepath.Join(dir, "wobble.txt")
	if err := os.WriteFile(base, []byte(benchmemOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	// 3 → 5 allocs/op sits inside 3*1.1 + 2: sync.Pool eviction jitter,
	// not a leak.
	worse := strings.ReplaceAll(benchmemOutput, "3 allocs/op", "5 allocs/op")
	if err := os.WriteFile(wobble, []byte(worse), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", base, "-update", "-baseline", baseline}, nil, os.Stderr); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-in", wobble, "-baseline", baseline}, nil, &sb); err != nil {
		t.Fatalf("within-slack alloc wobble failed the gate: %v\n%s", err, sb.String())
	}
}

func TestEmptyInputIsAnError(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), os.Stderr); err == nil {
		t.Fatal("empty input accepted")
	}
}
