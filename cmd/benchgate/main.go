// Command benchgate turns raw `go test -bench` output into a committed
// perf contract. It parses benchmark samples from stdin (or -in), takes
// the per-benchmark median across -count repetitions, writes the result
// as JSON, and fails when any benchmark regresses more than -tolerance
// against a committed baseline.
//
// Usage:
//
//	go test -bench . -benchtime 1x -count 6 ./internal/simmpi ./internal/checkpoint \
//	    | benchgate -baseline BENCH_baseline.json -out BENCH_PR3.json
//	go test -bench . ... | benchgate -update -baseline BENCH_baseline.json
//
// Benchmarks whose baseline median is under -floor are recorded but not
// gated: single-shot microsecond samples swing far more than the
// tolerance on shared CI runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// Report is the JSON shape of both the baseline and the PR artifact.
type Report struct {
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// median ns/op across the parsed samples.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
	Samples int     `json:"samples"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "read `go test -bench` output from this file instead of stdin")
		baseline  = fs.String("baseline", "BENCH_baseline.json", "committed baseline to gate against")
		out       = fs.String("out", "", "write the parsed medians as JSON to this file (the PR artifact)")
		update    = fs.Bool("update", false, "rewrite -baseline from the parsed samples instead of gating")
		tolerance = fs.Float64("tolerance", 0.10, "fail when median ns/op regresses more than this fraction")
		floor     = fs.Float64("floor", 500_000, "skip gating benchmarks whose baseline median is under this many ns")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	cur, err := parseBench(src)
	if err != nil {
		return err
	}
	if len(cur.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark samples found in input")
	}
	if *out != "" {
		if err := writeReport(*out, cur); err != nil {
			return err
		}
	}
	if *update {
		return writeReport(*baseline, cur)
	}

	base, err := readReport(*baseline)
	if err != nil {
		return fmt.Errorf("reading baseline (regenerate with -update): %w", err)
	}
	regressions := compare(base, cur, *tolerance, *floor, stdout)
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%: %v",
			len(regressions), *tolerance*100, regressions)
	}
	fmt.Fprintln(stdout, "benchgate: PASS")
	return nil
}

// compare prints one line per gated benchmark and returns the names that
// regressed past the tolerance. Benchmarks present only on one side are
// reported but never fail the gate (new benches land with their own
// baseline update; deleted ones disappear from it).
func compare(base, cur Report, tolerance, floor float64, w io.Writer) []string {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-40s MISSING from current run (baseline %.0f ns/op)\n", name, b.NsPerOp)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		switch {
		case b.NsPerOp < floor:
			verdict = "skipped (below floor)"
		case delta > tolerance:
			verdict = "REGRESSION"
			regressions = append(regressions, name)
		}
		fmt.Fprintf(w, "%-40s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, b.NsPerOp, c.NsPerOp, delta*100, verdict)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "%-40s NEW (%.0f ns/op, not gated)\n", name, cur.Benchmarks[name].NsPerOp)
		}
	}
	return regressions
}

// benchLine matches e.g. "BenchmarkPingPong-8   1   904388 ns/op  1132.26 MB/s".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func parseBench(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: map[string]Entry{}}
	samples := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return rep, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		samples[m[1]] = append(samples[m[1]], ns)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	for name, s := range samples {
		rep.Benchmarks[name] = Entry{NsPerOp: median(s), Samples: len(s)}
	}
	return rep, nil
}

func median(s []float64) float64 {
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func writeReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
