// Command benchgate turns raw `go test -bench` output into a committed
// perf contract. It parses benchmark samples from stdin (or -in), takes
// the per-benchmark median across -count repetitions, writes the result
// as JSON, and fails when any benchmark regresses more than -tolerance
// against a committed baseline.
//
// Usage:
//
//	go test -bench . -benchtime 1x -count 6 ./internal/simmpi ./internal/checkpoint \
//	    | benchgate -baseline BENCH_baseline.json -out BENCH_PR3.json
//	go test -bench . ... | benchgate -update -baseline BENCH_baseline.json
//
// Benchmarks whose baseline median is under -floor are recorded but not
// gated: single-shot microsecond samples swing far more than the
// tolerance on shared CI runners.
//
// When the input carries -benchmem columns, allocs/op is gated too, with
// its own -alloc-tolerance plus an absolute -alloc-slack (small counts
// jitter by a few allocations when the GC empties a sync.Pool mid-run).
// Allocation counts are deterministic even for sub-floor benchmarks, so
// the allocs gate ignores the ns floor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// Report is the JSON shape of both the baseline and the PR artifact.
type Report struct {
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// median ns/op across the parsed samples.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
	Samples int     `json:"samples"`
	// AllocsPerOp is the median allocations per op when the input was
	// produced with -benchmem; nil when the column was absent (e.g. a
	// baseline recorded before the allocs gate existed), which disables
	// the allocation gate for that benchmark.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "read `go test -bench` output from this file instead of stdin")
		baseline  = fs.String("baseline", "BENCH_baseline.json", "committed baseline to gate against")
		out       = fs.String("out", "", "write the parsed medians as JSON to this file (the PR artifact)")
		update    = fs.Bool("update", false, "rewrite -baseline from the parsed samples instead of gating")
		tolerance = fs.Float64("tolerance", 0.10, "fail when median ns/op regresses more than this fraction")
		floor     = fs.Float64("floor", 500_000, "skip gating benchmarks whose baseline median is under this many ns")
		allocTol  = fs.Float64("alloc-tolerance", 0.10, "fail when median allocs/op regresses more than this fraction")
		allocSlk  = fs.Float64("alloc-slack", 2, "absolute allocs/op allowed on top of -alloc-tolerance")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	cur, err := parseBench(src)
	if err != nil {
		return err
	}
	if len(cur.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark samples found in input")
	}
	if *out != "" {
		if err := writeReport(*out, cur); err != nil {
			return err
		}
	}
	if *update {
		return writeReport(*baseline, cur)
	}

	base, err := readReport(*baseline)
	if err != nil {
		return fmt.Errorf("reading baseline (regenerate with -update): %w", err)
	}
	regressions := compare(base, cur, gate{
		tolerance:  *tolerance,
		floor:      *floor,
		allocTol:   *allocTol,
		allocSlack: *allocSlk,
	}, stdout)
	if len(regressions) > 0 {
		return fmt.Errorf("%d gate(s) failed: %v", len(regressions), regressions)
	}
	fmt.Fprintln(stdout, "benchgate: PASS")
	return nil
}

// gate bundles the regression thresholds.
type gate struct {
	tolerance  float64 // ns/op fractional tolerance
	floor      float64 // ns below which ns/op is too noisy to gate
	allocTol   float64 // allocs/op fractional tolerance
	allocSlack float64 // absolute allocs/op on top of allocTol
}

// compare prints one line per gated benchmark and returns the names that
// regressed past a tolerance. Benchmarks present only on one side are
// reported but never fail the gate (new benches land with their own
// baseline update; deleted ones disappear from it).
func compare(base, cur Report, g gate, w io.Writer) []string {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-40s MISSING from current run (baseline %.0f ns/op)\n", name, b.NsPerOp)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok"
		switch {
		case b.NsPerOp < g.floor:
			verdict = "skipped (below floor)"
		case delta > g.tolerance:
			verdict = "REGRESSION"
			regressions = append(regressions, name)
		}
		fmt.Fprintf(w, "%-40s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, b.NsPerOp, c.NsPerOp, delta*100, verdict)
		if b.AllocsPerOp == nil || c.AllocsPerOp == nil {
			continue
		}
		verdict = "ok"
		if limit := *b.AllocsPerOp*(1+g.allocTol) + g.allocSlack; *c.AllocsPerOp > limit {
			verdict = "REGRESSION"
			regressions = append(regressions, name+" (allocs/op)")
		}
		fmt.Fprintf(w, "%-40s %12.0f -> %12.0f allocs/op          %s\n",
			name, *b.AllocsPerOp, *c.AllocsPerOp, verdict)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "%-40s NEW (%.0f ns/op, not gated)\n", name, cur.Benchmarks[name].NsPerOp)
		}
	}
	return regressions
}

// benchLine matches e.g.
// "BenchmarkPingPong-8   1   904388 ns/op  1132.26 MB/s   812 B/op   3 allocs/op".
// The trailing -benchmem columns are optional.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) allocs/op)?`)

func parseBench(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: map[string]Entry{}}
	samples := map[string][]float64{}
	allocs := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return rep, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		samples[m[1]] = append(samples[m[1]], ns)
		if m[3] != "" {
			a, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return rep, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
			allocs[m[1]] = append(allocs[m[1]], a)
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	for name, s := range samples {
		e := Entry{NsPerOp: median(s), Samples: len(s)}
		if a := allocs[name]; len(a) == len(s) {
			m := median(a)
			e.AllocsPerOp = &m
		}
		rep.Benchmarks[name] = e
	}
	return rep, nil
}

func median(s []float64) float64 {
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func writeReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
