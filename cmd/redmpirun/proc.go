package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/apps"
	"repro/internal/checkpoint"
	"repro/internal/failure"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/procmpi"
	"repro/internal/redundancy"
)

// procFlags carries the parsed flag values the proc transport needs —
// both for the parent job runner and for rebuilding the worker argv.
type procFlags struct {
	appName  string
	np       int
	degree   float64
	mode     string
	interval int
	restarts int
	recovery string
	seed     int64
	ckptDir  string
	grid     int
	iters    int
	compute  time.Duration
	timeout  time.Duration
	compress bool
	shards   int
	corrupt  string
	listen   string

	schedule     []failure.Kill
	scheduleOnce bool
	stepKills    string
	mtbf         time.Duration

	// Flags the proc transport rejects (checked in validate).
	peerReplicas   int
	peerShards     string
	peerBudget     int64
	partialRestart bool
	asyncCkpt      bool
	sendLatency    time.Duration
}

// validate rejects the feature combinations the multi-process backend
// does not carry: the peer checkpoint tier and async pipeline live in
// one address space, and send-latency emulation is a simulation
// instrument. Step-triggered kills ride the coordinator's frameStep
// relay and land as real SIGKILLs.
func (pf procFlags) validate() error {
	switch {
	case pf.peerReplicas > 0:
		return fmt.Errorf("-peer-replicas is not supported with -transport proc (the peer tier shares memory between ranks)")
	case pf.peerShards != "":
		return fmt.Errorf("-peer-shards is not supported with -transport proc (the peer tier shares memory between ranks)")
	case pf.peerBudget > 0:
		return fmt.Errorf("-peer-budget-bytes is not supported with -transport proc (no peer tier to budget)")
	case pf.partialRestart:
		return fmt.Errorf("-partial-restart is not supported with -transport proc")
	case pf.asyncCkpt:
		return fmt.Errorf("-async-checkpoint is not supported with -transport proc")
	case pf.sendLatency > 0:
		return fmt.Errorf("-send-latency is not supported with -transport proc (real sockets have real latency)")
	case pf.interval > 0 && pf.ckptDir == "":
		return fmt.Errorf("-interval with -transport proc requires -ckpt-dir (worker processes share checkpoints through the filesystem)")
	}
	return nil
}

// workerArgs rebuilds the argv a worker process needs to reconstruct
// this job's configuration plus its own identity.
func (pf procFlags) workerArgs(rank int, network, addr string) []string {
	args := []string{
		"-proc-worker-rank", strconv.Itoa(rank),
		"-proc-connect", addr,
		"-proc-network", network,
		"-app", pf.appName,
		"-np", strconv.Itoa(pf.np),
		"-r", strconv.FormatFloat(pf.degree, 'g', -1, 64),
		"-mode", pf.mode,
		"-grid", strconv.Itoa(pf.grid),
		"-iters", strconv.Itoa(pf.iters),
		"-compute", pf.compute.String(),
	}
	if pf.recovery != "" {
		args = append(args, "-recovery", pf.recovery)
	}
	// Forwarded only when set: a shrink worker's flag validation rejects
	// rollback flags even at their zero values.
	if pf.interval > 0 {
		args = append(args, "-interval", strconv.Itoa(pf.interval))
	}
	if pf.ckptDir != "" {
		args = append(args, "-ckpt-dir", pf.ckptDir)
	}
	if pf.compress {
		args = append(args, "-compress")
		if pf.shards > 1 {
			args = append(args, "-compress-shards", strconv.Itoa(pf.shards))
		}
	}
	if pf.corrupt != "" {
		args = append(args, "-corrupt", pf.corrupt)
	}
	return args
}

// runProcJob is the parent side of -transport proc: fork one worker
// process per physical rank and drive the procmpi attempt loop. reg and
// rec may be nil-equivalent (fresh registry, nil recorder) — they are
// the same objects the -metrics and -flight flags dump.
func runProcJob(pf procFlags, reg *obs.Registry, rec *obs.Recorder, tracer *obs.Tracer, rankView func(obs.RankView)) error {
	if err := pf.validate(); err != nil {
		return err
	}
	rankMap, err := redundancy.NewRankMap(pf.np, pf.degree)
	if err != nil {
		return err
	}
	spheres := make([][]int, rankMap.VirtualSize())
	for v := range spheres {
		if spheres[v], err = rankMap.Sphere(v); err != nil {
			return err
		}
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}

	network, listen := "unix", ""
	if pf.listen != "" {
		network, listen = "tcp", pf.listen
	}
	var stepKills []procmpi.StepKill
	if pf.stepKills != "" {
		kills, kerr := parseStepKills(pf.stepKills)
		if kerr != nil {
			return kerr
		}
		for _, k := range kills {
			stepKills = append(stepKills, procmpi.StepKill{Step: k.Step, Rank: k.Rank})
		}
	}
	cfg := procmpi.JobConfig{
		Physical:       rankMap.PhysicalSize(),
		Spheres:        spheres,
		Network:        network,
		Listen:         listen,
		MaxRestarts:    pf.restarts,
		AttemptTimeout: pf.timeout,
		Shrink:         pf.recovery == "shrink",
		Schedule:       pf.schedule,
		ScheduleOnce:   pf.scheduleOnce,
		StepKills:      stepKills,
		NodeMTBF:       pf.mtbf,
		Seed:           pf.seed,
		Obs:            reg,
		Flight:         rec,
		Tracer:         tracer,
		Spawn: func(rank int, network, addr string) (*os.Process, error) {
			cmd := exec.Command(exe, pf.workerArgs(rank, network, addr)...)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return nil, err
			}
			return cmd.Process, nil
		},
		// CI's real-kill step greps these lines for a victim PID.
		OnSpawn: func(attempt, rank, pid int) {
			fmt.Printf("proc: attempt %d rank %d pid=%d\n", attempt, rank, pid)
		},
		OnCoordinator: func(c *procmpi.Coordinator) {
			if rankView != nil {
				rankView(c)
			}
		},
	}

	start := time.Now()
	res, runErr := procmpi.RunJob(cfg)
	fmt.Printf("completed=%v wallclock=%v attempts=%d failures=%d\n",
		res.Completed, time.Since(start).Round(time.Millisecond),
		len(res.Attempts), res.TotalFailures)
	for _, at := range res.Attempts {
		fmt.Printf("  attempt %d: elapsed=%v failures=%d jobFailed=%v timedOut=%v\n",
			at.Index, at.Elapsed.Round(time.Millisecond), at.Failures, at.JobFailed, at.TimedOut)
	}
	if cfg.Shrink {
		fmt.Printf("recovery: shrink episodes=%d restarts=0\n", res.ShrinkEpisodes)
	}
	return runErr
}

// runProcWorker is the child side of -transport proc: dial the
// coordinator, run the application under the redundancy interposition
// layer with filesystem checkpointing, and report completion with a bye
// frame. Failure-class errors exit silently — the coordinator's
// liveness accounting already tells that story.
func runProcWorker(pf procFlags, rank int, network, addr string, factory func() apps.App) error {
	rankMap, err := redundancy.NewRankMap(pf.np, pf.degree)
	if err != nil {
		return err
	}
	w, err := procmpi.Dial(procmpi.WorkerConfig{
		Network: network,
		Addr:    addr,
		Rank:    rank,
		Size:    rankMap.PhysicalSize(),
		PID:     os.Getpid(),
	})
	if err != nil {
		return fmt.Errorf("worker %d: %w", rank, err)
	}
	defer w.Close()

	opts := []mpi.Option{
		mpi.WithDegree(pf.degree),
		mpi.WithHashCompare(pf.mode == "hash"),
		mpi.WithLiveness(w),
	}
	if pf.corrupt != "" {
		ranks, cerr := parseRankList(pf.corrupt)
		if cerr != nil {
			return cerr
		}
		opts = append(opts, mpi.WithCorruptRanks(ranks))
	}
	rc, err := redundancy.Wrap(w, rankMap, opts...)
	if err != nil {
		return err
	}
	// Peer deaths are observed through the fault-notification API, not by
	// sniffing error identities: the handler fires once per failed
	// virtual rank, from inside the observing call. Under -recovery
	// shrink the application installs its own handler over this one and
	// does its own classification (it repairs instead of exiting).
	peerFailures := 0
	rc.SetErrhandler(func(mpi.FailureInfo) { peerFailures++ })

	shrink := pf.recovery == "shrink"
	var client *checkpoint.Client
	if !shrink {
		var store checkpoint.Storage
		if pf.ckptDir != "" {
			if store, err = checkpoint.NewFileStorage(pf.ckptDir); err != nil {
				return err
			}
		} else {
			store = checkpoint.NewMemStorage()
		}
		if pf.compress {
			store = &checkpoint.CompressedStorage{Inner: store, Obs: obs.NewRegistry(), Shards: pf.shards}
		}
		ccfg := checkpoint.Config{Storage: store}
		if pf.interval > 0 {
			ccfg.StepInterval = pf.interval
		}
		if client, err = checkpoint.NewClient(rc, ccfg); err != nil {
			return err
		}
	}

	v := rc.Rank()
	sphere, err := rankMap.Sphere(v)
	if err != nil {
		return err
	}
	ctx := &apps.Context{
		Comm: rc,
		Ckpt: client,
		IsWriter: func() bool {
			for _, q := range sphere {
				if w.Alive(q) {
					return q == rank
				}
			}
			return false
		},
		ComputeDelay:   pf.compute,
		NoteStep:       func(step int) { _ = w.NoteStep(step) },
		ShrinkRecovery: shrink,
	}
	app := factory()
	if runErr := app.Run(ctx); runErr != nil {
		if peerFailures > 0 || isProcTeardown(runErr) {
			// A peer failure this worker observed (through the handler) or
			// a local fail-stop/teardown: an expected casualty, not an
			// application bug. The coordinator's liveness and sphere
			// accounting already tell that story.
			return nil
		}
		_ = w.ReportError(runErr.Error())
		return fmt.Errorf("worker %d: %w", rank, runErr)
	}
	return w.Bye()
}

// isProcTeardown reports errors that are local consequences of this
// worker's own fail-stop or the job's teardown. Peer failures are NOT
// classified here by error identity — the errhandler installed in
// runProcWorker is the single observation path for those.
func isProcTeardown(err error) bool {
	return errors.Is(err, mpi.ErrKilled) ||
		errors.Is(err, mpi.ErrAborted) ||
		errors.Is(err, mpi.ErrInterrupted) ||
		errors.Is(err, checkpoint.ErrIncomplete) ||
		errors.Is(err, checkpoint.ErrNotQuiescent)
}
