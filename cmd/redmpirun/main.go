// Command redmpirun launches one of the bundled applications under the
// combined redundancy + checkpoint/restart runtime with failure
// injection — the in-process analogue of `mpirun` with the RedMPI
// library, BLCR checkpointing, and the paper's failure injector attached.
//
// Examples:
//
//	redmpirun -app cg -np 8 -r 2 -mtbf 5s -interval 10 -max-restarts 5
//	redmpirun -app stencil -np 4 -r 1.5
//	redmpirun -app taskfarm -np 6 -r 3 -mode hash
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/procmpi"
	"repro/internal/redundancy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "redmpirun:", errorMessage(err))
		os.Exit(exitCode(err))
	}
}

// exitCode maps run errors to distinct process exit codes so CI smoke
// steps can tell a job that exhausted its restart budget (3) apart from
// usage or I/O errors (1).
func exitCode(err error) int {
	if errors.Is(err, core.ErrRestartsExhausted) || errors.Is(err, procmpi.ErrRestartsExhausted) {
		return 3
	}
	return 1
}

func errorMessage(err error) string {
	if errors.Is(err, core.ErrRestartsExhausted) || errors.Is(err, procmpi.ErrRestartsExhausted) {
		return "job unrecoverable: " + err.Error()
	}
	return err.Error()
}

func run(args []string) error {
	fs := flag.NewFlagSet("redmpirun", flag.ContinueOnError)
	var (
		transport = fs.String("transport", "sim", "message-passing backend: sim (in-process goroutine ranks) | proc (one OS process per physical rank)")
		listenAt  = fs.String("listen", "", "proc transport: rendezvous over TCP on this listen address instead of a Unix socket")

		procRank    = fs.Int("proc-worker-rank", -1, "internal: run as the proc-transport worker for this physical rank")
		procConnect = fs.String("proc-connect", "", "internal: coordinator address for -proc-worker-rank")
		procNetwork = fs.String("proc-network", "unix", "internal: coordinator network for -proc-worker-rank")

		appName  = fs.String("app", "cg", "application: cg, stencil, taskfarm")
		np       = fs.Int("np", 8, "virtual process count N")
		degree   = fs.Float64("r", 2, "redundancy degree (1, 1.5, 2, 2.5, 3, ...)")
		mode     = fs.String("mode", "all", "replica comparison mode: all | hash")
		mtbf     = fs.Duration("mtbf", 0, "per-node MTBF for Poisson failure injection (0 = none)")
		interval = fs.Int("interval", 0, "checkpoint every N steps (0 = no checkpointing)")
		restarts = fs.Int("max-restarts", 10, "restart budget")
		recovery = fs.String("recovery", "restart", "recovery policy: restart (attempt loop from checkpoints) | shrink (ULFM-style survivor recovery: the job shrinks onto the survivors, no restarts, no checkpoints)")
		seed     = fs.Int64("seed", 1, "failure-injection seed")
		ckptDir  = fs.String("ckpt-dir", "", "persist checkpoints to this directory (default: in-memory)")
		grid     = fs.Int("grid", 10, "cg: Laplacian grid (grid^2 unknowns); stencil: width")
		iters    = fs.Int("iters", 100, "iterations (cg/stencil) or tasks (taskfarm)")
		compute  = fs.Duration("compute", time.Millisecond, "emulated per-step compute time")
		sendLat  = fs.Duration("send-latency", 0, "emulated per-message wire latency")
		timeout  = fs.Duration("timeout", 2*time.Minute, "per-attempt watchdog")
		compress = fs.Bool("compress", false, "DEFLATE-compress checkpoint images")
		shards   = fs.Int("compress-shards", 0, "compress checkpoint images in N parallel shards (with -compress; 0/1 = single stream)")

		asyncCkpt = fs.Bool("async-checkpoint", false, "pipeline checkpoint compress+write onto background workers (overlap with compute)")
		asyncWkrs = fs.Int("async-workers", 0, "background writer pool size for -async-checkpoint (0 = GOMAXPROCS)")

		kill     = fs.String("kill", "", "deterministic kill list rank[@offset],... (e.g. 2@0s,3@50ms); replaces -mtbf draws")
		killOnce = fs.Bool("kill-once", false, "apply -kill to the first attempt only (forces exactly one restart cycle)")
		killStep = fs.String("kill-at-step", "", "deterministic step-triggered kill list rank@step,... (e.g. 4@38,5@38)")
		corrupt  = fs.String("corrupt", "", "physical ranks injecting silent data corruption, comma-separated")

		peerRep  = fs.Int("peer-replicas", 0, "replicate each sphere's checkpoint shard to this many buddy spheres' memories (0 = peer tier off)")
		peerSh   = fs.String("peer-shards", "", "erasure-code the peer tier as k+m Reed-Solomon shards spread across spheres (e.g. 4+2: any 2 sphere losses recoverable at ~1.5x memory); exclusive with -peer-replicas")
		peerBudg = fs.Int64("peer-budget-bytes", 0, "cap the peer tier's resident bytes per rank, evicting whole oldest generations when exceeded (0 = unlimited)")
		stableEv = fs.Int("stable-every", 1, "push every Nth peer generation to the stable tier (with -peer-replicas or -peer-shards)")
		partialR = fs.Bool("partial-restart", false, "recover sphere deaths in place from the peer tier (requires -peer-replicas or -peer-shards, and -interval)")

		metricsF = fs.String("metrics", "", "write the job metrics snapshot as JSON to this file and print the rendered table")
		traceF   = fs.String("trace", "", "write the structured event trace as JSONL to this file")
		obsAddr  = fs.String("obs-addr", "", "serve live introspection (/metrics, /healthz, /ranks, /timeline) on this address for the run's duration")
		flightF  = fs.String("flight", "", "write the flight recorder's black box as JSONL to this file at exit (success or failure)")
		flightC  = fs.Int("flight-cap", obs.DefaultFlightCap, "per-rank flight-recorder ring capacity")
		flightCk = fs.String("flight-clock", "logical", "flight-recorder clock: logical (deterministic) | mono (wall-time phase durations)")
		pprofA   = fs.String("pprof", "", "serve net/http/pprof on this address for the run's duration")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	factory, describe, err := buildApp(*appName, *grid, *iters)
	if err != nil {
		return err
	}
	if *transport != "sim" && *transport != "proc" {
		return fmt.Errorf("unknown -transport %q (sim | proc)", *transport)
	}
	switch *recovery {
	case "restart":
	case "shrink":
		// Shrink-and-continue excludes the whole rollback machinery; an
		// explicitly requested piece of it is a contradiction, while the
		// defaults are simply neutralised.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		for _, name := range []string{"interval", "max-restarts", "peer-replicas", "peer-shards", "peer-budget-bytes", "partial-restart", "async-checkpoint", "kill-once"} {
			if set[name] {
				return fmt.Errorf("-%s is meaningless with -recovery shrink (the job never restarts or restores)", name)
			}
		}
		*interval, *restarts, *peerRep, *partialR = 0, 0, 0, false
		*peerSh, *peerBudg = "", 0
	default:
		return fmt.Errorf("unknown -recovery %q (restart | shrink)", *recovery)
	}
	pf := procFlags{
		appName:  *appName,
		np:       *np,
		degree:   *degree,
		mode:     *mode,
		interval: *interval,
		restarts: *restarts,
		recovery: *recovery,
		seed:     *seed,
		ckptDir:  *ckptDir,
		grid:     *grid,
		iters:    *iters,
		compute:  *compute,
		timeout:  *timeout,
		compress: *compress,
		shards:   *shards,
		corrupt:  *corrupt,
		listen:   *listenAt,

		scheduleOnce: *killOnce,
		stepKills:    *killStep,
		mtbf:         *mtbf,

		peerReplicas:   *peerRep,
		peerShards:     *peerSh,
		peerBudget:     *peerBudg,
		partialRestart: *partialR,
		asyncCkpt:      *asyncCkpt,
		sendLatency:    *sendLat,
	}
	peerData, peerParity := 0, 0
	if *peerSh != "" {
		var perr error
		peerData, peerParity, perr = parseShardSpec(*peerSh)
		if perr != nil {
			return perr
		}
	}
	if *procRank >= 0 {
		// Worker re-exec path: this process IS one physical rank.
		if *procConnect == "" {
			return fmt.Errorf("-proc-worker-rank requires -proc-connect")
		}
		return runProcWorker(pf, *procRank, *procNetwork, *procConnect, factory)
	}
	cfg := core.Config{
		Ranks:          *np,
		Degree:         *degree,
		RecoveryPolicy: core.RecoveryPolicy(*recovery),
		StepInterval:   *interval,
		NodeMTBF:       *mtbf,
		Seed:           *seed,
		MaxRestarts:    *restarts,
		AttemptTimeout: *timeout,
		ComputeDelay:   *compute,
		SendDelay:      *sendLat,
		ScheduleOnce:   *killOnce,
		PeerReplicas:     *peerRep,
		PeerDataShards:   peerData,
		PeerParityShards: peerParity,
		PeerBudgetBytes:  *peerBudg,
		StableEvery:      *stableEv,
		PartialRestart:   *partialR,

		AsyncCheckpoint: *asyncCkpt,
		AsyncWorkers:    *asyncWkrs,
	}
	if *kill != "" {
		schedule, err := parseKillList(*kill)
		if err != nil {
			return err
		}
		cfg.FailureSchedule = schedule
	}
	if *killStep != "" {
		kills, err := parseStepKills(*killStep)
		if err != nil {
			return err
		}
		cfg.StepKills = kills
	}
	if *corrupt != "" {
		ranks, err := parseRankList(*corrupt)
		if err != nil {
			return err
		}
		cfg.CorruptRanks = ranks
	}

	reg := obs.NewRegistry()
	cfg.Obs = reg
	var tracer *obs.Tracer
	var traceFile *os.File
	if *traceF != "" {
		traceFile, err = os.Create(*traceF)
		if err != nil {
			return err
		}
		tracer = obs.NewTracer(traceFile)
		cfg.Tracer = tracer
	}
	if *flightCk != "logical" && *flightCk != "mono" {
		return fmt.Errorf("unknown -flight-clock %q (logical | mono)", *flightCk)
	}
	var rec *obs.Recorder
	if *flightF != "" || *obsAddr != "" {
		rec = obs.NewRecorder(*flightC, *flightCk == "mono")
		cfg.Recorder = rec
	}
	if *obsAddr != "" {
		srv := obs.NewServer(reg, rec)
		cfg.RankView = srv.SetRankView
		bound, serr := srv.Start(*obsAddr)
		if serr != nil {
			return serr
		}
		defer srv.Stop() //nolint:errcheck // best-effort teardown
		fmt.Printf("introspection: http://%s/metrics\n", bound)
	}
	if *pprofA != "" || *cpuProf != "" || *memProf != "" {
		stop, perr := obs.StartProfiling(obs.ProfileConfig{
			Addr: *pprofA, CPUFile: *cpuProf, HeapFile: *memProf,
		})
		if perr != nil {
			return perr
		}
		defer func() {
			if serr := stop(); serr != nil {
				fmt.Fprintln(os.Stderr, "redmpirun: profiling:", serr)
			}
		}()
	}
	switch *mode {
	case "all":
		cfg.Mode = redundancy.AllToAll
	case "hash":
		cfg.Mode = redundancy.MsgPlusHash
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if *ckptDir != "" {
		store, err := checkpoint.NewFileStorage(*ckptDir)
		if err != nil {
			return err
		}
		cfg.Storage = store
	}
	if *compress {
		inner := cfg.Storage
		if inner == nil {
			inner = checkpoint.NewMemStorage()
		}
		cfg.Storage = &checkpoint.CompressedStorage{Inner: inner, Obs: reg, Shards: *shards}
	} else if *shards > 1 {
		return fmt.Errorf("-compress-shards requires -compress")
	}

	fmt.Printf("launching %s: N=%d r=%g (%d physical ranks under Eq. 8)\n",
		*appName, *np, *degree, mustPhysical(*np, *degree))
	if *transport == "proc" {
		pf.schedule = cfg.FailureSchedule
		runErr := runProcJob(pf, reg, rec, tracer, cfg.RankView)
		if tracer != nil {
			if err := tracer.Close(); err != nil {
				return fmt.Errorf("writing trace: %w", err)
			}
			if err := traceFile.Close(); err != nil {
				return err
			}
		}
		if *metricsF != "" {
			snap := reg.Snapshot()
			if err := writeMetrics(*metricsF, snap); err != nil {
				return err
			}
			fmt.Print(snap.Format())
		}
		if *flightF != "" {
			if err := writeFlight(*flightF, rec); err != nil {
				return err
			}
		}
		return runErr
	}
	start := time.Now()
	res, runErr := core.Run(cfg, factory)
	fmt.Printf("completed=%v wallclock=%v attempts=%d failures=%d checkpoints=%d\n",
		res.Completed, time.Since(start).Round(time.Millisecond),
		len(res.Attempts), res.TotalFailures, res.TotalCheckpoints)
	for _, at := range res.Attempts {
		fmt.Printf("  attempt %d: elapsed=%v failures=%d jobFailed=%v restored=%v checkpoints=%d partials=%d\n",
			at.Index, at.Elapsed.Round(time.Millisecond), at.Failures, at.JobFailed, at.Restored, at.Checkpoints, at.PartialRestarts)
	}
	if cfg.PeerTier() {
		fmt.Printf("recovery: partial-restarts=%d full-restarts=%d recomputed-steps=%d\n",
			res.PartialRestarts, res.Restarts, res.RecomputedSteps)
	}
	if cfg.RecoveryPolicy == core.RecoverShrink {
		fmt.Printf("recovery: shrink episodes=%d restarts=0\n", res.ShrinkEpisodes)
	}
	fmt.Printf("redundancy layer: %d physical sends, %d deliveries, %d mismatches, %d corrections\n",
		res.Redundancy.PhysicalSends, res.Redundancy.Deliveries,
		res.Redundancy.Mismatches, res.Redundancy.Corrections)
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
	}
	if *metricsF != "" {
		if err := writeMetrics(*metricsF, res.Metrics); err != nil {
			return err
		}
		fmt.Print(res.Metrics.Format())
	}
	// The black box dumps on both success and failure — a failed run is
	// exactly when the forensic timeline matters.
	if *flightF != "" {
		if err := writeFlight(*flightF, rec); err != nil {
			return err
		}
	}
	if runErr != nil {
		return runErr
	}
	if len(res.CompletedApps) > 0 {
		fmt.Println("result:", describe(res.CompletedApps[0]))
	}
	return nil
}

// writeFlight dumps the flight recorder's retained records as JSONL.
func writeFlight(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("writing flight dump: %w", err)
	}
	return f.Close()
}

// writeMetrics serialises the snapshot as indented JSON.
func writeMetrics(path string, snap obs.Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseKillList parses "rank[@offset],..." into a deterministic kill
// schedule; a bare rank kills at t=0.
func parseKillList(spec string) ([]failure.Kill, error) {
	var out []failure.Kill
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rankStr, afterStr, hasAt := strings.Cut(part, "@")
		rank, err := strconv.Atoi(rankStr)
		if err != nil {
			return nil, fmt.Errorf("bad -kill entry %q: %w", part, err)
		}
		k := failure.Kill{Rank: rank}
		if hasAt {
			after, err := time.ParseDuration(afterStr)
			if err != nil {
				return nil, fmt.Errorf("bad -kill offset %q: %w", part, err)
			}
			k.After = after
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -kill list %q", spec)
	}
	return out, nil
}

// parseStepKills parses "rank@step,..." into a step-triggered kill
// schedule (steps are 1-based checkpointing steps of the virtual app).
func parseStepKills(spec string) ([]core.StepKill, error) {
	var out []core.StepKill
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rankStr, stepStr, hasAt := strings.Cut(part, "@")
		if !hasAt {
			return nil, fmt.Errorf("bad -kill-at-step entry %q: want rank@step", part)
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil {
			return nil, fmt.Errorf("bad -kill-at-step rank %q: %w", part, err)
		}
		step, err := strconv.Atoi(stepStr)
		if err != nil {
			return nil, fmt.Errorf("bad -kill-at-step step %q: %w", part, err)
		}
		out = append(out, core.StepKill{Rank: rank, Step: step})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -kill-at-step list %q", spec)
	}
	return out, nil
}

// parseShardSpec parses "k+m" into erasure data/parity shard counts.
func parseShardSpec(spec string) (data, parity int, err error) {
	kStr, mStr, hasPlus := strings.Cut(spec, "+")
	if !hasPlus {
		return 0, 0, fmt.Errorf("bad -peer-shards %q: want k+m (e.g. 4+2)", spec)
	}
	data, err = strconv.Atoi(strings.TrimSpace(kStr))
	if err != nil {
		return 0, 0, fmt.Errorf("bad -peer-shards data count %q: %w", spec, err)
	}
	parity, err = strconv.Atoi(strings.TrimSpace(mStr))
	if err != nil {
		return 0, 0, fmt.Errorf("bad -peer-shards parity count %q: %w", spec, err)
	}
	return data, parity, nil
}

// parseRankList parses a comma-separated physical rank list.
func parseRankList(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rank, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad -corrupt entry %q: %w", part, err)
		}
		out = append(out, rank)
	}
	return out, nil
}

func mustPhysical(n int, degree float64) int {
	m, err := redundancy.NewRankMap(n, degree)
	if err != nil {
		return -1
	}
	return m.PhysicalSize()
}

func buildApp(name string, grid, iters int) (func() apps.App, func(apps.App) string, error) {
	switch name {
	case "cg":
		m, err := apps.Laplacian2D(grid)
		if err != nil {
			return nil, nil, err
		}
		return func() apps.App { return &apps.CG{Matrix: m, Iterations: iters} },
			func(a apps.App) string {
				cg := a.(*apps.CG)
				return fmt.Sprintf("residual=%.3e checksum=%.6f", cg.ResidualNorm, cg.Checksum)
			}, nil
	case "stencil":
		return func() apps.App {
				return &apps.Stencil{Width: grid, Height: 3 * grid, Iterations: iters, HotBoundary: 100}
			},
			func(a apps.App) string {
				return fmt.Sprintf("heat=%.6f", a.(*apps.Stencil).Heat)
			}, nil
	case "taskfarm":
		return func() apps.App { return &apps.TaskFarm{Tasks: iters} },
			func(a apps.App) string {
				return fmt.Sprintf("total=%d", a.(*apps.TaskFarm).Total)
			}, nil
	default:
		return nil, nil, fmt.Errorf("unknown app %q (cg, stencil, taskfarm)", name)
	}
}
