package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// TestGoldenMetricsSnapshot locks down the metrics snapshot of a small
// fixed-seed job that exercises every subsystem: a deterministic
// first-attempt sphere kill forces one restart, and one corrupt replica
// forces mismatch voting. Every run of this command line must produce
// exactly these counters.
func TestGoldenMetricsSnapshot(t *testing.T) {
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	args := []string{
		"-app", "cg", "-np", "4", "-r", "2",
		"-grid", "6", "-iters", "30",
		"-interval", "10", "-compute", "2ms",
		"-max-restarts", "3",
		"-kill", "2,3", "-kill-once",
		"-corrupt", "5",
		"-metrics", metricsPath,
	}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}

	// Spot-check the acceptance counters before golden comparison, so a
	// stale golden file cannot mask a dead counter.
	for _, name := range []string{
		"simmpi_sends_total", "redundancy_votes_total",
		"redundancy_mismatches_total", "checkpoint_committed_total",
		"runner_restarts_total", "failure_kills_total",
	} {
		if snap.Counter(name) == 0 {
			t.Errorf("%s = 0, want nonzero", name)
		}
	}

	// Wall-time derived counters (_ms gauges, _ns stall/overlap totals)
	// are the only nondeterministic ones; everything else must be
	// byte-identical run to run.
	got := snap.FilterCounters(func(name string) bool {
		return !strings.Contains(name, "_ms") && !strings.Contains(name, "_ns")
	}).Format()

	path := filepath.Join("testdata", "golden", "metrics.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./cmd/redmpirun -run TestGolden -update)", err)
	}
	if got != string(want) {
		t.Errorf("metrics snapshot drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTraceOutputParsesAndIsOrdered checks the JSONL trace file: every
// line is a JSON event, and events are sorted by (rank, seq).
func TestTraceOutputParsesAndIsOrdered(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	args := []string{
		"-app", "cg", "-np", "4", "-r", "2",
		"-grid", "6", "-iters", "30",
		"-interval", "10", "-compute", "2ms",
		"-max-restarts", "3",
		"-kill", "2,3", "-kill-once",
		"-trace", tracePath,
	}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace has %d events, want at least attempt/kill/commit activity", len(lines))
	}
	var events []obs.Event
	for i, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %v", i, err)
		}
		events = append(events, ev)
	}
	kinds := map[string]bool{}
	for i, ev := range events {
		kinds[ev.Kind] = true
		if i == 0 {
			continue
		}
		prev := events[i-1]
		if ev.Rank < prev.Rank || (ev.Rank == prev.Rank && ev.Seq <= prev.Seq) {
			t.Errorf("events out of order at line %d: %+v after %+v", i, ev, prev)
		}
	}
	for _, want := range []string{"attempt_start", "attempt_end", "kill", "ckpt_commit", "run_end"} {
		if !kinds[want] {
			t.Errorf("trace missing %q events (saw %v)", want, kinds)
		}
	}
}

func TestParseKillList(t *testing.T) {
	kills, err := parseKillList("2@0s, 3@50ms,7")
	if err != nil {
		t.Fatal(err)
	}
	if len(kills) != 3 || kills[0].Rank != 2 || kills[1].After.Milliseconds() != 50 || kills[2].Rank != 7 {
		t.Fatalf("parsed %+v", kills)
	}
	for _, bad := range []string{"", "x", "2@", "2@x"} {
		if _, err := parseKillList(bad); err == nil {
			t.Errorf("parseKillList(%q) accepted", bad)
		}
	}
}

func TestParseStepKills(t *testing.T) {
	kills, err := parseStepKills("4@38, 5@38,6@40")
	if err != nil {
		t.Fatal(err)
	}
	if len(kills) != 3 || kills[0].Rank != 4 || kills[0].Step != 38 || kills[2].Step != 40 {
		t.Fatalf("parsed %+v", kills)
	}
	for _, bad := range []string{"", "4", "4@", "@38", "x@38", "4@x"} {
		if _, err := parseStepKills(bad); err == nil {
			t.Errorf("parseStepKills(%q) accepted", bad)
		}
	}
}

// TestPartialRestartFlagsSmoke exercises the -peer-replicas /
// -partial-restart / -kill-at-step flags end to end: a whole-sphere kill
// at step 38 must be absorbed in place (zero full restarts).
func TestPartialRestartFlagsSmoke(t *testing.T) {
	args := []string{
		"-app", "cg", "-np", "4", "-r", "2",
		"-grid", "6", "-iters", "60",
		"-interval", "5", "-compute", "0s",
		"-peer-replicas", "1", "-stable-every", "4", "-partial-restart",
		"-kill-at-step", "4@38,5@38",
		"-max-restarts", "3",
	}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
}

// TestShrinkRecoveryFlagSmoke exercises -recovery shrink end to end on
// the sim transport: a worker sphere killed mid-taskfarm must be
// survived in place — completion with zero restarts and zero restores —
// and the flight dump must carry the shrink span.
func TestShrinkRecoveryFlagSmoke(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")
	flightPath := filepath.Join(dir, "flight.jsonl")
	args := []string{
		"-app", "taskfarm", "-np", "4", "-r", "1",
		"-iters", "25", "-compute", "0s",
		"-recovery", "shrink",
		"-kill-at-step", "2@5",
		"-metrics", metricsPath,
		"-flight", flightPath,
	}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("shrink_episodes_total"); got == 0 {
		t.Error("shrink_episodes_total = 0")
	}
	for _, name := range []string{"checkpoint_restores_total", "runner_restarts_total"} {
		if got := snap.Counter(name); got != 0 {
			t.Errorf("%s = %d, want 0", name, got)
		}
	}
	flight, err := os.ReadFile(flightPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(flight), `"kind":"shrink"`) {
		t.Error("flight dump has no shrink span")
	}
}

// TestShrinkRejectsRollbackFlags pins the CLI contract: explicitly
// combining -recovery shrink with any rollback flag is an error, not a
// silent override.
func TestShrinkRejectsRollbackFlags(t *testing.T) {
	for _, extra := range [][]string{
		{"-interval", "5"},
		{"-max-restarts", "2"},
		{"-peer-replicas", "1"},
		{"-partial-restart"},
		{"-kill-once"},
	} {
		args := append([]string{"-app", "taskfarm", "-np", "3", "-r", "1",
			"-iters", "4", "-compute", "0s", "-recovery", "shrink"}, extra...)
		if err := run(args); err == nil {
			t.Errorf("run with %v accepted under -recovery shrink", extra)
		}
	}
	if err := run([]string{"-app", "cg", "-np", "2", "-r", "1", "-iters", "4",
		"-grid", "4", "-compute", "0s", "-recovery", "rewind"}); err == nil {
		t.Error("unknown -recovery value accepted")
	}
}

// TestExhaustionExitCode pins the CI-smoke contract: a job that burns
// through its restart budget exits with the distinct code 3, anything
// else with 1.
func TestExhaustionExitCode(t *testing.T) {
	args := []string{
		"-app", "cg", "-np", "4", "-r", "2",
		"-grid", "6", "-iters", "30",
		"-interval", "10", "-compute", "0s",
		"-max-restarts", "0",
		"-kill", "2,3",
	}
	err := run(args)
	if !errors.Is(err, core.ErrRestartsExhausted) {
		t.Fatalf("err = %v, want ErrRestartsExhausted", err)
	}
	if code := exitCode(err); code != 3 {
		t.Fatalf("exitCode = %d, want 3", code)
	}
	if msg := errorMessage(err); !strings.Contains(msg, "job unrecoverable") {
		t.Fatalf("message %q not distinct for exhaustion", msg)
	}
	if code := exitCode(errors.New("usage")); code != 1 {
		t.Fatalf("generic exitCode = %d, want 1", code)
	}
}

func TestMainSmokeAllApps(t *testing.T) {
	for _, app := range []string{"cg", "stencil", "taskfarm"} {
		app := app
		t.Run(app, func(t *testing.T) {
			args := []string{"-app", app, "-np", "2", "-r", "1", "-iters", "4", "-grid", "4", "-compute", "0s"}
			if err := run(args); err != nil {
				t.Fatalf("%s: %v", app, err)
			}
		})
	}
}

func Example_metricsShape() {
	// Document the snapshot JSON shape the -metrics flag emits.
	reg := obs.NewRegistry()
	reg.Counter("simmpi_sends_total").Add(3)
	data, _ := json.Marshal(reg.Snapshot())
	fmt.Println(string(data))
	// Output: {"counters":[{"name":"simmpi_sends_total","value":3}]}
}
