package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureDump is a hand-built logical-clock black box: two ranks, a
// recovery episode tiled by its three phases on the virtual stream
// (rank -1), transport points, and rework markers. Lines are grouped by
// rank but deliberately not fully sorted — redreport must canonicalize.
const fixtureDump = `{"seq":0,"kind":"send","rank":0,"sphere":-1,"step":7,"arg":1}
{"seq":1,"kind":"send","rank":0,"sphere":-1,"step":7,"arg":1}
{"seq":2,"kind":"restore","ev":"B","rank":0,"sphere":-1,"step":0,"arg":0}
{"seq":3,"kind":"restore","ev":"E","rank":0,"sphere":-1,"step":0,"arg":0}
{"seq":0,"kind":"dead","rank":1,"sphere":-1,"step":0,"arg":0}
{"seq":1,"kind":"revive","rank":1,"sphere":-1,"step":0,"arg":0}
{"seq":0,"kind":"kill","rank":-1,"sphere":0,"step":0,"arg":1}
{"seq":1,"kind":"sphere_exhausted","rank":-1,"sphere":0,"step":0,"arg":1}
{"seq":2,"kind":"recovery","ev":"B","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":3,"kind":"recovery_drain","ev":"B","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":4,"kind":"recovery_drain","ev":"E","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":5,"kind":"recovery_revive","ev":"B","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":6,"kind":"recovery_revive","ev":"E","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":7,"kind":"recovery_resume","ev":"B","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":8,"kind":"recovery_resume","ev":"E","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":9,"kind":"recovery","ev":"E","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":10,"kind":"recompute","rank":-1,"sphere":-1,"step":36,"arg":0}
{"seq":11,"kind":"recompute","rank":-1,"sphere":-1,"step":37,"arg":0}
`

func writeFixture(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "box.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportRoundTripByteStable(t *testing.T) {
	path := writeFixture(t, fixtureDump)
	render := func() []byte {
		var buf bytes.Buffer
		if err := run([]string{path}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("report not byte-stable:\n--- first\n%s\n--- second\n%s", a, b)
	}
	out := string(a)
	for _, want := range []string{
		"18 records, 3 ranks, clock=logical",
		"recovery", "recovery_drain",
		"episode 0 (sphere 0): total=7 drain=1 revive=1 resume=1",
		"sphere_exhausted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Rework rollup: count and note (tabwriter pads with spaces).
	if !regexp.MustCompile(`recompute\s+2\s+\(rework`).MatchString(out) {
		t.Errorf("recompute rollup missing or wrong count:\n%s", out)
	}
	if strings.Contains(out, "unpaired") {
		t.Errorf("fixture has no unpaired markers, report disagrees:\n%s", out)
	}
}

func TestReportMonoDurations(t *testing.T) {
	// The same episode with wall-clock stamps: 5ms total tiled 2+1+2ms.
	mono := `{"seq":0,"ns":1000000,"kind":"recovery","ev":"B","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":1,"ns":1000000,"kind":"recovery_drain","ev":"B","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":2,"ns":3000000,"kind":"recovery_drain","ev":"E","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":3,"ns":3000000,"kind":"recovery_revive","ev":"B","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":4,"ns":4000000,"kind":"recovery_revive","ev":"E","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":5,"ns":4000000,"kind":"recovery_resume","ev":"B","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":6,"ns":6000000,"kind":"recovery_resume","ev":"E","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":7,"ns":6000000,"kind":"recovery","ev":"E","rank":-1,"sphere":0,"step":0,"arg":0}
{"seq":8,"ns":500000,"kind":"sphere_exhausted","rank":-1,"sphere":0,"step":0,"arg":1}
`
	path := writeFixture(t, mono)
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "clock=mono") {
		t.Fatalf("mono dump not detected:\n%s", out)
	}
	if !strings.Contains(out, "total=5ms drain=2ms revive=1ms resume=2ms") {
		t.Errorf("episode durations wrong:\n%s", out)
	}
	if !strings.Contains(out, "detect=500µs") {
		t.Errorf("detection latency missing:\n%s", out)
	}
}

func TestPerfettoExportValidJSON(t *testing.T) {
	path := writeFixture(t, fixtureDump)
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run([]string{"-perfetto", tracePath, path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if payload.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", payload.DisplayTimeUnit)
	}
	var complete, instant int
	for _, ev := range payload.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Name == "recovery" && ev.Dur != 7 {
				t.Errorf("recovery span dur = %v, want 7 ordinal µs", ev.Dur)
			}
		case "i":
			instant++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	// 5 spans (restore + recovery + 3 phases), 8 point records.
	if complete != 5 || instant != 8 {
		t.Errorf("trace events = %d spans + %d instants, want 5 + 8", complete, instant)
	}
}

func TestUnpairedMarkersReported(t *testing.T) {
	// An E whose B was overwritten by the ring, and a B whose E never
	// came (run died mid-phase).
	dump := `{"seq":5,"kind":"restore","ev":"E","rank":0,"sphere":-1,"step":0,"arg":0}
{"seq":6,"kind":"pipeline_drain","ev":"B","rank":0,"sphere":-1,"step":3,"arg":0}
`
	path := writeFixture(t, dump)
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "unpaired span markers: 2") {
		t.Errorf("unpaired markers not reported:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("no input files accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeFixture(t, "{not json}\n")
	if err := run([]string{bad}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), ":1:") {
		t.Errorf("malformed line error = %v, want line-numbered parse error", err)
	}
}
