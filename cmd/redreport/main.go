// Command redreport analyzes a flight-recorder black box (redmpirun
// -flight) or a structured trace (redmpirun -trace) and prints the
// failure-forensics critical path: which recovery phases the run spent
// its time in, which rank was slowest in each, how many recovery
// episodes happened and what each cost, and how much rework (recomputed
// steps) the failures caused. With -perfetto it additionally exports the
// records as Chrome trace_event JSON loadable in Perfetto or
// chrome://tracing.
//
// Dumps from the default deterministic (logical-clock) mode carry no
// wall time; spans are then measured in "events" — the number of records
// the rank emitted inside the span — and the report is byte-identical
// across runs of the same seeded job. Dual-clock dumps (-flight-clock
// mono) get real durations.
//
// Examples:
//
//	redmpirun -app cg -np 8 -r 2 -flight box.jsonl ...
//	redreport box.jsonl
//	redreport -perfetto timeline.json box.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "redreport:", err)
		os.Exit(1)
	}
}

// record is the superset of the flight Record and the Tracer Event JSONL
// shapes, so redreport ingests either file kind (trace events carry no
// ev/ns/arg and parse as point records).
type record struct {
	Seq    uint64 `json:"seq"`
	Nanos  int64  `json:"ns"`
	Kind   string `json:"kind"`
	Ev     string `json:"ev"`
	Rank   int    `json:"rank"`
	Sphere int    `json:"sphere"`
	Step   int    `json:"step"`
	Arg    int64  `json:"arg"`
}

// span is one paired B/E interval. In mono dumps start/length are
// nanoseconds; in logical dumps they are the begin Seq and the number of
// records the rank emitted inside the span (its "width" in events).
type span struct {
	Kind   string
	Rank   int
	Sphere int
	Step   int
	Start  int64
	Length int64
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("redreport", flag.ContinueOnError)
	var (
		perfetto = fs.String("perfetto", "", "also write the records as Chrome trace_event JSON to this file")
		top      = fs.Int("top", 8, "span kinds to show in the phase table (0 = all)")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: redreport [flags] dump.jsonl ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return errors.New("no input files")
	}

	var recs []record
	for _, path := range fs.Args() {
		part, err := readDump(path)
		if err != nil {
			return err
		}
		recs = append(recs, part...)
	}
	// Canonical order: (rank, seq), the order the recorder dumps. Sorting
	// here makes multi-file merges and hand-edited inputs well-defined.
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Rank != recs[j].Rank {
			return recs[i].Rank < recs[j].Rank
		}
		return recs[i].Seq < recs[j].Seq
	})

	mono := false
	for _, r := range recs {
		if r.Nanos != 0 {
			mono = true
			break
		}
	}
	spans, unpaired := pairSpans(recs, mono)
	report(stdout, recs, spans, unpaired, mono, *top)

	if *perfetto != "" {
		if err := writePerfetto(*perfetto, recs, spans, mono); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "perfetto trace written to %s\n", *perfetto)
	}
	return nil
}

func readDump(path string) ([]record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var r record
		if err := json.Unmarshal([]byte(text), &r); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// pairSpans walks each rank's stream in order, pairing B/E records of
// the same kind with a per-(rank, kind) stack (spans of one kind nest on
// a rank; that is how every call site emits them). A B whose E was
// overwritten by the ring — or never emitted because the run died inside
// the phase — is returned in unpaired.
func pairSpans(recs []record, mono bool) (spans []span, unpaired []record) {
	type key struct {
		rank int
		kind string
	}
	open := make(map[key][]record)
	var keys []key
	for _, r := range recs {
		if r.Ev != "B" && r.Ev != "E" {
			continue
		}
		k := key{r.Rank, r.Kind}
		if r.Ev == "B" {
			if _, seen := open[k]; !seen {
				keys = append(keys, k)
			}
			open[k] = append(open[k], r)
			continue
		}
		stack := open[k]
		if len(stack) == 0 {
			// E without a retained B: the ring dropped the begin. Report
			// it as unpaired rather than inventing an interval.
			unpaired = append(unpaired, r)
			continue
		}
		b := stack[len(stack)-1]
		open[k] = stack[:len(stack)-1]
		sp := span{Kind: r.Kind, Rank: r.Rank, Sphere: b.Sphere, Step: b.Step}
		if mono {
			sp.Start = b.Nanos
			sp.Length = r.Nanos - b.Nanos
		} else {
			sp.Start = int64(b.Seq)
			sp.Length = int64(r.Seq - b.Seq)
		}
		spans = append(spans, sp)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return keys[i].kind < keys[j].kind
	})
	for _, k := range keys {
		unpaired = append(unpaired, open[k]...)
	}
	return spans, unpaired
}

// phaseStat aggregates one span kind.
type phaseStat struct {
	kind    string
	count   int
	total   int64
	max     int64
	maxRank int
}

func report(w io.Writer, recs []record, spans []span, unpaired []record, mono bool, top int) {
	ranks := make(map[int]bool)
	points := make(map[string]int)
	for _, r := range recs {
		ranks[r.Rank] = true
		if r.Ev == "" {
			points[r.Kind]++
		}
	}
	clock, unit := "logical", "events"
	if mono {
		clock, unit = "mono", "wall time"
	}
	fmt.Fprintf(w, "flight report: %d records, %d ranks, clock=%s (durations in %s)\n",
		len(recs), len(ranks), clock, unit)

	byKind := make(map[string]*phaseStat)
	var kinds []string
	for _, sp := range spans {
		st := byKind[sp.Kind]
		if st == nil {
			st = &phaseStat{kind: sp.Kind, maxRank: sp.Rank}
			byKind[sp.Kind] = st
			kinds = append(kinds, sp.Kind)
		}
		st.count++
		st.total += sp.Length
		if sp.Length > st.max {
			st.max = sp.Length
			st.maxRank = sp.Rank
		}
	}
	// Critical path first: the phase the run spent the most time in.
	sort.Slice(kinds, func(i, j int) bool {
		a, b := byKind[kinds[i]], byKind[kinds[j]]
		if a.total != b.total {
			return a.total > b.total
		}
		return a.kind < b.kind
	})

	if top > 0 && len(kinds) > top {
		kinds = kinds[:top]
	}
	if len(kinds) > 0 {
		fmt.Fprintln(w, "\nphases (critical path, slowest first):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  kind\tcount\ttotal\tmean\tmax\tslowest rank")
		for _, k := range kinds {
			st := byKind[k]
			fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%s\t%d\n",
				st.kind, st.count,
				fmtDur(st.total, mono),
				fmtDur(st.total/int64(st.count), mono),
				fmtDur(st.max, mono),
				st.maxRank)
		}
		tw.Flush()
	}

	if len(points) > 0 {
		fmt.Fprintln(w, "\nevents:")
		var names []string
		for k := range points {
			names = append(names, k)
		}
		sort.Strings(names)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, k := range names {
			note := ""
			switch k {
			case "recompute":
				note = "\t(rework: steps redone at or below a prior high-water mark)"
			case "sphere_exhausted":
				note = "\t(job-failure triggers: every replica of a sphere dead)"
			}
			fmt.Fprintf(tw, "  %s\t%d%s\n", k, points[k], note)
		}
		tw.Flush()
	}

	reportRecoveries(w, recs, spans, mono)

	if len(unpaired) > 0 {
		fmt.Fprintf(w, "\nunpaired span markers: %d (ring overwrote the partner, or the run died mid-phase)\n", len(unpaired))
	}
}

// reportRecoveries breaks each recovery episode into its phases. The
// runner emits "recovery" spans on rank -1 with step = episode ordinal,
// tiled by recovery_drain / recovery_revive / recovery_resume children
// carrying the same (sphere, step).
func reportRecoveries(w io.Writer, recs []record, spans []span, mono bool) {
	type epKey struct{ sphere, step int }
	type episode struct {
		total  int64
		start  int64
		phases map[string]int64
	}
	eps := make(map[epKey]*episode)
	var order []epKey
	for _, sp := range spans {
		if sp.Kind != "recovery" {
			continue
		}
		k := epKey{sp.Sphere, sp.Step}
		if _, dup := eps[k]; !dup {
			order = append(order, k)
			eps[k] = &episode{total: sp.Length, start: sp.Start, phases: map[string]int64{}}
		}
	}
	if len(eps) == 0 {
		return
	}
	for _, sp := range spans {
		switch sp.Kind {
		case "recovery_drain", "recovery_revive", "recovery_resume":
			if ep := eps[epKey{sp.Sphere, sp.Step}]; ep != nil {
				ep.phases[sp.Kind] += sp.Length
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].step != order[j].step {
			return order[i].step < order[j].step
		}
		return order[i].sphere < order[j].sphere
	})
	fmt.Fprintln(w, "\nrecovery episodes:")
	for _, k := range order {
		ep := eps[k]
		line := fmt.Sprintf("  episode %d (sphere %d): total=%s", k.step, k.sphere, fmtDur(ep.total, mono))
		for _, ph := range []string{"recovery_drain", "recovery_revive", "recovery_resume"} {
			if d, ok := ep.phases[ph]; ok {
				line += fmt.Sprintf(" %s=%s", strings.TrimPrefix(ph, "recovery_"), fmtDur(d, mono))
			}
		}
		if mono {
			// Detection latency: last sphere_exhausted for this sphere that
			// precedes the recovery's begin.
			var trigger int64 = -1
			for _, r := range recs {
				if r.Kind == "sphere_exhausted" && r.Sphere == k.sphere &&
					r.Nanos <= ep.start && r.Nanos > trigger {
					trigger = r.Nanos
				}
			}
			if trigger >= 0 {
				line += fmt.Sprintf(" detect=%s", fmtDur(ep.start-trigger, true))
			}
		}
		fmt.Fprintln(w, line)
	}
}

// fmtDur renders a span length: a wall duration in mono dumps, a plain
// event count in logical dumps.
func fmtDur(v int64, mono bool) string {
	if !mono {
		return fmt.Sprintf("%d", v)
	}
	return time.Duration(v).Round(time.Microsecond).String()
}

// traceEvent is one Chrome trace_event entry ("X" complete spans, "i"
// instants). ts and dur are microseconds per the format; logical dumps
// use the per-rank Seq as the timebase, which Perfetto renders as an
// ordinal timeline.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func writePerfetto(path string, recs []record, spans []span, mono bool) error {
	scale := 1.0 / 1e3 // ns → µs
	if !mono {
		scale = 1.0 // 1 event = 1 µs of ordinal time
	}
	var evs []traceEvent
	for _, sp := range spans {
		evs = append(evs, traceEvent{
			Name: sp.Kind, Ph: "X", Pid: 0, Tid: sp.Rank,
			Ts: float64(sp.Start) * scale, Dur: float64(sp.Length) * scale,
			Args: map[string]any{"sphere": sp.Sphere, "step": sp.Step},
		})
	}
	for _, r := range recs {
		if r.Ev != "" {
			continue
		}
		ts := float64(r.Nanos) * scale
		if !mono {
			ts = float64(r.Seq)
		}
		evs = append(evs, traceEvent{
			Name: r.Kind, Ph: "i", Pid: 0, Tid: r.Rank, Ts: ts, S: "t",
			Args: map[string]any{"sphere": r.Sphere, "step": r.Step, "arg": r.Arg},
		})
	}
	payload := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		Meta        string       `json:"displayTimeUnit"`
	}{TraceEvents: evs, Meta: "ms"}
	data, err := json.MarshalIndent(payload, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
