// Command modelexplore evaluates the Section 4 analytic model over
// user-chosen parameters and prints sweeps, optima, crossovers, and
// cost-function trade-offs as aligned text or CSV — the "tuning knob for
// users to adapt to resource availabilities" the paper concludes with.
//
// Examples:
//
//	modelexplore -n 128 -work 46m -mtbf 6h -c 120s -restart 500s
//	modelexplore -n 100000 -work 128h -mtbf 5y -c 10m -crossover
//	modelexplore -n 4096 -work 24h -mtbf 5y -c 5m -wtime 1 -wnodes 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/model"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modelexplore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("modelexplore", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 128, "virtual process count N")
		workS     = fs.String("work", "46m", "base execution time t (accepts h/m/s, d, y)")
		mtbfS     = fs.String("mtbf", "6h", "per-node MTBF θ")
		cS        = fs.String("c", "120s", "checkpoint cost c")
		restartS  = fs.String("restart", "500s", "restart cost R")
		alpha     = fs.Float64("alpha", 0.2, "communication/computation ratio α")
		step      = fs.Float64("step", 0.25, "degree sweep step")
		rmax      = fs.Float64("rmax", 3, "degree sweep upper bound")
		crossover = fs.Bool("crossover", false, "also report redundancy crossover process counts")
		wTime     = fs.Float64("wtime", 0, "weighted-cost time weight (with -wnodes)")
		wNodes    = fs.Float64("wnodes", 0, "weighted-cost node weight")
		useYoung  = fs.Bool("young", false, "use Young's interval instead of Daly's")
		csv       = fs.Bool("csv", false, "CSV output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	work, err := cliutil.ParseSeconds(*workS)
	if err != nil {
		return fmt.Errorf("bad -work: %w", err)
	}
	mtbf, err := cliutil.ParseSeconds(*mtbfS)
	if err != nil {
		return fmt.Errorf("bad -mtbf: %w", err)
	}
	c, err := cliutil.ParseSeconds(*cS)
	if err != nil {
		return fmt.Errorf("bad -c: %w", err)
	}
	restart, err := cliutil.ParseSeconds(*restartS)
	if err != nil {
		return fmt.Errorf("bad -restart: %w", err)
	}
	p := model.Params{
		N: *n, Work: work, Alpha: *alpha,
		NodeMTBF: mtbf, CheckpointCost: c, RestartCost: restart,
	}
	opts := model.Options{UseYoung: *useYoung}

	curve, err := model.Sweep(p, 1, *rmax, *step, opts)
	if err != nil {
		return err
	}
	sep := "  "
	if *csv {
		sep = ","
	}
	fmt.Printf("degree%snodes%sT_total_h%sMTBF_sys_s%sdelta_s%schkpts%sfailures%snode_hours\n",
		sep, sep, sep, sep, sep, sep, sep)
	best := curve[0]
	for _, ev := range curve {
		fmt.Printf("%.2f%s%d%s%s%s%.1f%s%.1f%s%.1f%s%.2f%s%.1f\n",
			ev.Degree, sep, ev.NodesUsed, sep, cliutil.FormatHours(ev.Total), sep, ev.MTBF, sep,
			ev.Interval, sep, ev.Checkpoints, sep, ev.Failures, sep, ev.NodeHours())
		if ev.Total < best.Total {
			best = ev
		}
	}
	fmt.Printf("\noptimal degree %.2f: T = %s h on %d nodes (δ = %.0f s, %.1f expected failures)\n",
		best.Degree, cliutil.FormatHours(best.Total), best.NodesUsed, best.Interval, best.Failures)

	if *wTime > 0 || *wNodes > 0 {
		opt, err := model.OptimizeCost(p, 1, *rmax, *step, opts, model.WeightedCost(p, *wTime, *wNodes))
		if err != nil {
			return err
		}
		fmt.Printf("weighted cost (wtime=%.2f, wnodes=%.2f) optimum: r = %.2f, T = %s h, %d nodes\n",
			*wTime, *wNodes, opt.Best.Degree, cliutil.FormatHours(opt.Best.Total), opt.Best.NodesUsed)
	}
	if *crossover {
		n12, err := model.Crossover(p, 1, 2, 2, 4_000_000, opts)
		if err != nil {
			return err
		}
		n13, err := model.Crossover(p, 1, 3, 2, 4_000_000, opts)
		if err != nil {
			return err
		}
		twoForOne, err := model.ThroughputBreakEven(p, 2, 2, 2, 4_000_000, opts)
		if err != nil {
			return err
		}
		fmt.Printf("crossovers: 2x beats 1x from N=%d; 3x beats 1x from N=%d; two-2x-jobs-for-one from N=%d\n",
			n12, n13, twoForOne)
	}
	return nil
}
