// Command paperbench regenerates every table and figure of the paper's
// evaluation and prints the same rows/series the paper reports.
//
// Usage:
//
//	paperbench -all                 # everything (table4 runs Monte Carlo)
//	paperbench -exp table4 -runs 400
//	paperbench -exp table4 -parallel 1   # force the sequential engine (same output)
//	paperbench -exp fig13 -csv
//	paperbench -list
//
// Monte-Carlo and model grids run across -parallel worker goroutines
// (default GOMAXPROCS). Seeding is hierarchical and index-based
// (stats.Substream), so the emitted tables are byte-identical at every
// parallelism level. Per-experiment wall times go to stderr (-times=false
// to silence).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/expt"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

type generator struct {
	describe string
	emit     func(opts options) (string, error)
}

type options struct {
	runs     int
	seed     int64
	csv      bool
	live     bool
	parallel int
	times    bool
	// reg accumulates per-experiment wall times (expt_wall_ms_<id>
	// gauges) alongside the -times stderr report; nil disables.
	reg *obs.Registry
}

func run(args []string) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	var (
		all      = fs.Bool("all", false, "regenerate every experiment")
		exp      = fs.String("exp", "", "experiment id (see -list)")
		list     = fs.Bool("list", false, "list experiment ids")
		runs     = fs.Int("runs", 200, "Monte-Carlo runs per cell for table4/fig8/fig9/fig12")
		seed     = fs.Int64("seed", 1, "Monte-Carlo seed")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text where applicable")
		live     = fs.Bool("live", false, "run table5 live on the functional stack (slower)")
		parallel = fs.Int("parallel", 0, "worker goroutines per experiment (0 = GOMAXPROCS); results are identical at every setting")
		times    = fs.Bool("times", true, "report per-experiment wall time on stderr")
		metricsF = fs.String("metrics", "", "write a metrics snapshot (per-experiment wall times) as JSON to this file")
		pprofA   = fs.String("pprof", "", "serve net/http/pprof on this address while experiments run")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := options{runs: *runs, seed: *seed, csv: *csv, live: *live, parallel: *parallel, times: *times}
	if *metricsF != "" {
		opts.reg = obs.NewRegistry()
		defer func() {
			data, err := json.MarshalIndent(opts.reg.Snapshot(), "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: metrics:", err)
				return
			}
			if err := os.WriteFile(*metricsF, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: metrics:", err)
			}
		}()
	}
	if *pprofA != "" || *cpuProf != "" || *memProf != "" {
		stop, err := obs.StartProfiling(obs.ProfileConfig{
			Addr: *pprofA, CPUFile: *cpuProf, HeapFile: *memProf,
		})
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: profiling:", err)
			}
		}()
	}
	gens := generators()

	if *list {
		ids := make([]string, 0, len(gens))
		for id := range gens {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("%-8s %s\n", id, gens[id].describe)
		}
		return nil
	}
	if *all {
		ids := make([]string, 0, len(gens))
		for id := range gens {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		start := time.Now()
		for _, id := range ids {
			out, err := emitTimed(id, gens[id], opts)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Println(out)
		}
		if opts.times {
			fmt.Fprintf(os.Stderr, "paperbench: all experiments in %v (parallelism %d)\n",
				time.Since(start).Round(time.Millisecond), resolvedParallelism(opts))
		}
		return nil
	}
	if *exp == "" {
		fs.Usage()
		return fmt.Errorf("need -all, -list or -exp <id>")
	}
	id := strings.ToLower(*exp)
	g, ok := gens[id]
	if !ok {
		return fmt.Errorf("unknown experiment %q (try -list)", *exp)
	}
	out, err := emitTimed(id, g, opts)
	if err != nil {
		return err
	}
	fmt.Println(out)
	return nil
}

// emitTimed runs one generator and reports its wall time on stderr, so
// the timing report never pollutes the machine-readable stdout. The same
// wall time lands in the metrics snapshot as an expt_wall_ms_<id> gauge.
func emitTimed(id string, g generator, opts options) (string, error) {
	start := time.Now()
	out, err := g.emit(opts)
	if err != nil {
		return "", err
	}
	elapsed := time.Since(start)
	opts.reg.Gauge("expt_wall_ms_" + id).Set(elapsed.Milliseconds())
	if opts.times {
		fmt.Fprintf(os.Stderr, "paperbench: %-8s %v\n", id, elapsed.Round(time.Millisecond))
	}
	return out, nil
}

func resolvedParallelism(opts options) int {
	if opts.parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return opts.parallel
}

func renderTable(t *expt.Table, csv bool) string {
	if csv {
		return t.CSV()
	}
	return t.Format()
}

// table4Cache shares one Monte-Carlo matrix between table4/fig8/fig9/
// fig12 within a -all invocation.
var table4Cache *expt.Table4Result

func table4Result(opts options) (*expt.Table4Result, error) {
	if table4Cache != nil {
		return table4Cache, nil
	}
	p := expt.DefaultTable4Params()
	p.Runs = opts.runs
	p.Seed = opts.seed
	p.Parallelism = opts.parallel
	res, err := expt.Table4(p)
	if err != nil {
		return nil, err
	}
	table4Cache = res
	return res, nil
}

func generators() map[string]generator {
	return map[string]generator{
		"table1": {"HPC cluster reliability survey (static)", func(o options) (string, error) {
			return renderTable(expt.Table1(), o.csv), nil
		}},
		"table2": {"168h job, 5yr MTBF: work breakdown vs nodes", func(o options) (string, error) {
			t, _, err := expt.Table2(expt.DefaultBreakdownParams())
			if err != nil {
				return "", err
			}
			return renderTable(t, o.csv), nil
		}},
		"table3": {"100k-node job, varied MTBF: work breakdown", func(o options) (string, error) {
			t, _, err := expt.Table3(expt.DefaultBreakdownParams())
			if err != nil {
				return "", err
			}
			return renderTable(t, o.csv), nil
		}},
		"fig2": {"system reliability vs redundancy degree", func(o options) (string, error) {
			f, err := expt.Figure2()
			if err != nil {
				return "", err
			}
			return f.Format(), nil
		}},
		"fig4": {"T_total vs degree, configuration 1 (c=600s)", figureCurve(0)},
		"fig5": {"T_total vs degree, configuration 2 (θ=2.5y)", figureCurve(1)},
		"fig6": {"T_total vs degree, configuration 3 (c=60s)", figureCurve(2)},
		"table4": {"combined C/R+redundancy experiment matrix (Monte Carlo)", func(o options) (string, error) {
			res, err := table4Result(o)
			if err != nil {
				return "", err
			}
			return renderTable(res.Table, o.csv), nil
		}},
		"table5": {"failure-free runtime vs degree (observed vs Eq. 1)", func(o options) (string, error) {
			t, _ := expt.Table5()
			out := renderTable(t, o.csv)
			if o.live {
				live, _, err := expt.Table5Live(expt.DefaultTable5LiveParams())
				if err != nil {
					return "", err
				}
				out += "\n" + renderTable(live, o.csv)
			}
			return out, nil
		}},
		"recovery": {"full vs partial restart cost on one sphere kill (live)", func(o options) (string, error) {
			t, err := expt.Recovery(expt.DefaultRecoveryParams())
			if err != nil {
				return "", err
			}
			return renderTable(t, o.csv), nil
		}},
		"shrinkcmp": {"checkpoint/restart vs shrink-and-continue across MTBF (model)", func(o options) (string, error) {
			t, err := expt.ShrinkVsRestart()
			if err != nil {
				return "", err
			}
			return renderTable(t, o.csv), nil
		}},
		"shrinklive": {"restart vs shrink-and-continue on one sphere kill (live)", func(o options) (string, error) {
			t, err := expt.ShrinkLive(expt.DefaultShrinkLiveParams())
			if err != nil {
				return "", err
			}
			return renderTable(t, o.csv), nil
		}},
		"overlap": {"sync vs pipelined checkpoint write path: effective δ (live)", func(o options) (string, error) {
			t, err := expt.Overlap(expt.DefaultOverlapParams())
			if err != nil {
				return "", err
			}
			return renderTable(t, o.csv), nil
		}},
		"fig8": {"line graph of table4", func(o options) (string, error) {
			res, err := table4Result(o)
			if err != nil {
				return "", err
			}
			return expt.Figure8(res).Format(), nil
		}},
		"fig9": {"surface data of table4", func(o options) (string, error) {
			res, err := table4Result(o)
			if err != nil {
				return "", err
			}
			return renderTable(expt.Figure9(res), o.csv), nil
		}},
		"fig10": {"runtime increase with redundancy", func(o options) (string, error) {
			_, f := expt.Table5()
			return f.Format(), nil
		}},
		"fig11": {"simplified §6 model performance", func(o options) (string, error) {
			f, _, err := expt.Figure11(o.parallel)
			if err != nil {
				return "", err
			}
			return f.Format(), nil
		}},
		"fig12": {"observed vs modeled overlay + Q-Q fit", func(o options) (string, error) {
			t4, err := table4Result(o)
			if err != nil {
				return "", err
			}
			_, mins, err := expt.Figure11(o.parallel)
			if err != nil {
				return "", err
			}
			res, err := expt.Figure12(t4, mins, nil)
			if err != nil {
				return "", err
			}
			return res.Figure.Format(), nil
		}},
		"fig13": {"weak-scaling wallclock to 30k processes + crossovers", func(o options) (string, error) {
			res, err := expt.Scaling(scalingParams(o), 30000, "fig13")
			if err != nil {
				return "", err
			}
			return res.Figure.Format(), nil
		}},
		"fig14": {"weak-scaling wallclock to 200k processes + throughput", func(o options) (string, error) {
			res, err := expt.Scaling(scalingParams(o), 200000, "fig14")
			if err != nil {
				return "", err
			}
			return res.Figure.Format(), nil
		}},
	}
}

func scalingParams(o options) expt.ScalingParams {
	p := expt.DefaultScalingParams()
	p.Parallelism = o.parallel
	return p
}

func figureCurve(idx int) func(options) (string, error) {
	return func(options) (string, error) {
		curves, err := expt.Figures4to6()
		if err != nil {
			return "", err
		}
		return curves[idx].Figure.Format(), nil
	}
}
